// Weak conjunctive predicate detection: handcrafted cases plus a property
// test against a brute-force scan of the enumerated lattice.
#include "detect/conjunctive.hpp"

#include <gtest/gtest.h>

#include "poset/lattice.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace paramount {
namespace {

using testing::key_of;
using testing::make_figure4_poset;
using testing::make_grid;
using testing::make_random;
using testing::Key;

TEST(Conjunctive, DetectsConcurrentPair) {
  // Figure 4: e1[1] and e2[1] are concurrent.
  const Poset poset = make_figure4_poset();
  auto predicate = [](ThreadId t, EventIndex i) {
    return i == 1 && (t == 0 || t == 1);
  };
  const auto result = detect_conjunctive(poset, predicate);
  ASSERT_TRUE(result.detected);
  EXPECT_EQ(key_of(result.cut), (Key{1, 1}));
}

TEST(Conjunctive, OrderedFrontierEventsStillFormACut) {
  const Poset poset = make_figure4_poset();
  // Thread 0 satisfied only at e1[2]; thread 1 only at e2[1]. The events are
  // ordered (e2[1] → e1[2]) but {2,1} is a consistent cut whose frontier
  // satisfies both locals — the conjunction IS detectable there.
  auto predicate = [](ThreadId t, EventIndex i) {
    return t == 0 ? i == 2 : i == 1;
  };
  const auto result = detect_conjunctive(poset, predicate);
  ASSERT_TRUE(result.detected);
  EXPECT_EQ(key_of(result.cut), (Key{2, 1}));
}

TEST(Conjunctive, UndetectableWhenDependencyOvershoots) {
  // t0: a1, a2; t1: b1 with a2 → b1. t0 satisfied only at a1, t1 only at b1:
  // any cut containing b1 must include a2, so a1 can never be t0's frontier.
  PosetBuilder builder(2);
  builder.add_event(0);                     // a1
  const EventId a2 = builder.add_event(0);  // a2
  builder.add_event_after(1, a2);           // b1
  const Poset poset = std::move(builder).build();

  auto predicate = [](ThreadId t, EventIndex i) {
    return t == 0 ? i == 1 : i == 1;
  };
  const auto result = detect_conjunctive(poset, predicate);
  EXPECT_FALSE(result.detected);
}

TEST(Conjunctive, ThreadWithNoSatisfyingEvent) {
  const Poset poset = make_grid(3, 3);
  auto predicate = [](ThreadId t, EventIndex) { return t == 0; };
  EXPECT_FALSE(detect_conjunctive(poset, predicate).detected);
}

TEST(Conjunctive, EmptyThreadMakesConjunctionUndetectable) {
  PosetBuilder builder(2);
  builder.add_event(0);
  const Poset poset = std::move(builder).build();
  auto predicate = [](ThreadId, EventIndex) { return true; };
  EXPECT_FALSE(detect_conjunctive(poset, predicate).detected);
}

TEST(Conjunctive, IndependentThreadsFirstEvents) {
  const Poset poset = make_grid(4, 4);
  auto predicate = [](ThreadId, EventIndex i) { return i == 3; };
  const auto result = detect_conjunctive(poset, predicate);
  ASSERT_TRUE(result.detected);
  EXPECT_EQ(key_of(result.cut), (Key{3, 3}));
}

TEST(Conjunctive, FindsLeastCut) {
  // Chain of messages: satisfying events exist early and late; detection
  // must return the least consistent combination.
  PosetBuilder builder(2);
  builder.add_event(0);                         // e0[1]
  const EventId s = builder.add_event(0);       // e0[2]
  builder.add_event(1);                         // e1[1]
  builder.add_event_after(1, s);                // e1[2] after e0[2]
  builder.add_event(0);                         // e0[3]
  const Poset poset = std::move(builder).build();

  auto predicate = [](ThreadId, EventIndex) { return true; };
  const auto result = detect_conjunctive(poset, predicate);
  ASSERT_TRUE(result.detected);
  EXPECT_EQ(key_of(result.cut), (Key{1, 1}));  // both first events concurrent
}

// Property: the specialized detector's verdict must match a brute-force scan
// of every consistent state.
class ConjunctiveAgainstBruteForce
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(ConjunctiveAgainstBruteForce, VerdictMatchesLatticeScan) {
  const auto [seed, modulus] = GetParam();
  const Poset poset = make_random(4, 24, 0.4, seed);

  // A pseudo-random but deterministic local predicate.
  auto holds = [&](ThreadId t, EventIndex i) {
    std::uint64_t h = seed * 31 + t * 1009 + i * 9176;
    return splitmix64(h) % static_cast<std::uint64_t>(modulus) == 0;
  };
  auto predicate = [&](ThreadId t, EventIndex i) { return holds(t, i); };

  // Brute force: satisfying cuts are closed under meet (the frontier of a
  // meet is a pointwise choice of the two frontiers), so the meet of all of
  // them is the least satisfying cut.
  bool brute = false;
  Frontier least(4);
  for (const Frontier& g : all_ideals(poset)) {
    bool all = true;
    for (ThreadId t = 0; t < poset.num_threads() && all; ++t) {
      all = g[t] >= 1 && holds(t, g[t]);
    }
    if (!all) continue;
    least = brute ? ideal_meet(least, g) : g;
    brute = true;
  }

  const auto result = detect_conjunctive(poset, predicate);
  EXPECT_EQ(result.detected, brute) << "seed=" << seed;
  if (brute && result.detected) {
    EXPECT_TRUE(poset.is_consistent(result.cut));
    for (ThreadId t = 0; t < poset.num_threads(); ++t) {
      EXPECT_TRUE(holds(t, result.cut[t]));
    }
    EXPECT_EQ(key_of(result.cut), key_of(least)) << "not the least cut";
  }
}

INSTANTIATE_TEST_SUITE_P(Random, ConjunctiveAgainstBruteForce,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u,
                                                              5u, 6u),
                                            ::testing::Values(2, 3, 5)));

TEST(Conjunctive, WorkIsPolynomial) {
  // The examined-events counter stays linear-ish in |E|, while the lattice
  // is exponential — the whole point of the specialized detector.
  const Poset poset = make_random(8, 64, 0.3, 9);
  auto predicate = [](ThreadId, EventIndex i) { return i % 7 == 0; };
  const auto result = detect_conjunctive(poset, predicate);
  EXPECT_LE(result.events_examined, 2 * poset.total_events());
}

}  // namespace
}  // namespace paramount
