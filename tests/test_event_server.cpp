// EpollServer (the multiplexed event-loop front end): differential oracle
// over Unix AND TCP transports, stream-id multiplexing, per-tenant
// backpressure, the scale soak, and TCP robustness.
//
// The oracle suites hold the same contract as the thread front end's
// (tests/test_service.cpp): state counts and race sets bit-identical to the
// offline driver — including when many logical sessions multiplex over one
// connection, where every stream must match its own per-seed oracle. The
// soak ramps thousands of idle sessions plus active multiplexed streams
// through one reactor thread and asserts no fd leak (counted via
// /proc/self/fd) and no leaked EnumGuard pins. The robustness suite kills
// TCP connections mid-frame, half-closes them, and throws fuzzed payloads,
// asserting typed Errors or clean closes — never an abort, never a pin.
//
// Synchronization is condition-variable based throughout
// (EpollServer::wait_sessions_completed); no sleep-based sync.
#include "service/epoll_server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/paramount.hpp"
#include "poset/poset_builder.hpp"
#include "service/frame.hpp"
#include "util/sync.hpp"
#include "workloads/event_stream.hpp"

namespace paramount::service {
namespace {

using namespace std::chrono_literals;

constexpr auto kWait = 60s;  // generous: TSan/ASan builds are slow

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/pm_esvc_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

// Open-fd count for the whole process — the soak's leak detector. Counted
// through std::filesystem so no raw fd syscalls appear outside src/.
std::size_t open_fd_count() {
  std::size_t n = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)entry;
    ++n;
  }
  return n;
}

// In-process epoll server plus stream-aware frame-level client helpers.
class EventServerTest : public ::testing::Test {
 protected:
  // Starts on a Unix path by default; pass kTcp to exercise the TCP
  // listener (ephemeral port).
  void start_server(EpollServer::Options options = {},
                    Endpoint::Kind kind = Endpoint::Kind::kUnix) {
    if (kind == Endpoint::Kind::kTcp) {
      options.endpoint.kind = Endpoint::Kind::kTcp;
      options.endpoint.host = "127.0.0.1";
      options.endpoint.port = 0;
    } else {
      options.endpoint.kind = Endpoint::Kind::kUnix;
      options.endpoint.path = unique_socket_path();
    }
    endpoint_ = options.endpoint;
    server_ = std::make_unique<EpollServer>(std::move(options));
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
    if (kind == Endpoint::Kind::kTcp) endpoint_.port = server_->tcp_port();
  }

  FrameChannel connect() {
    std::string error;
    UniqueFd fd = connect_endpoint(endpoint_, &error);
    EXPECT_TRUE(fd.valid()) << error;
    return FrameChannel(std::move(fd));
  }

  // Reads one frame, asserts it arrived on `expect_stream`, and decodes it.
  DecodedFrame read_frame(FrameChannel& channel,
                          std::uint32_t expect_stream = 0) {
    std::vector<std::uint8_t> payload;
    std::uint32_t stream = 0;
    const ReadStatus status = channel.read_frame(&payload, &stream);
    EXPECT_EQ(status, ReadStatus::kFrame) << to_string(status);
    DecodedFrame frame;
    if (status == ReadStatus::kFrame) {
      EXPECT_EQ(stream, expect_stream);
      const auto err = decode_frame(payload, &frame);
      EXPECT_FALSE(err.has_value()) << (err ? err->message : "");
    }
    return frame;
  }

  void hello(FrameChannel& channel, const HelloBody& body,
             std::uint32_t stream = 0) {
    ASSERT_TRUE(channel.write_frame(encode_hello(body), stream));
    const DecodedFrame ack = read_frame(channel, stream);
    ASSERT_EQ(ack.op, Op::kHelloAck);
    EXPECT_EQ(ack.hello_ack.version, kProtocolVersion);
  }

  void await_completed(std::uint64_t n) {
    ASSERT_TRUE(server_->wait_sessions_completed(n, kWait))
        << "sessions did not complete";
  }

  Endpoint endpoint_;
  std::unique_ptr<EpollServer> server_;
};

// Sends `total` delta-encoded synthetic events on `stream`.
void stream_events(FrameChannel& channel, SyntheticEventStream& stream,
                   std::vector<VectorClock>& prev, std::uint64_t total,
                   std::uint32_t stream_id = 0) {
  for (std::uint64_t i = 0; i < total; ++i) {
    const SyntheticEventStream::StreamEvent ev = stream.next();
    EventBody body;
    body.tid = ev.tid;
    body.kind = ev.kind;
    body.object = ev.object;
    for (std::size_t j = 0; j < ev.clock.size(); ++j) {
      if (ev.clock[j] != prev[ev.tid][j]) {
        body.delta.push_back({static_cast<std::uint32_t>(j), ev.clock[j]});
      }
    }
    prev[ev.tid] = ev.clock;
    ASSERT_TRUE(channel.write_frame(encode_event(body), stream_id));
  }
}

std::uint64_t oracle_states(const SyntheticEventStream::Params& params,
                            std::uint64_t total) {
  SyntheticEventStream stream(params);
  PosetBuilder builder(params.num_threads);
  for (std::uint64_t i = 0; i < total; ++i) {
    const SyntheticEventStream::StreamEvent ev = stream.next();
    builder.add_event_with_clock(ev.tid, ev.kind, ev.object, ev.clock);
  }
  const Poset poset = std::move(builder).build();
  ParamountOptions options;
  options.num_workers = 2;
  return enumerate_paramount(poset, options, [](const Frontier&) {}).states;
}

SyntheticEventStream::Params oracle_params(std::uint64_t seed) {
  SyntheticEventStream::Params params;
  params.num_threads = 4;
  params.num_locks = 2;
  params.sync_probability = 0.8;
  params.seed = seed;
  return params;
}

// ---- differential oracle over both transports ----

struct TransportCase {
  Endpoint::Kind kind;
  std::uint32_t async_workers;
  std::uint64_t gc_every;
  const char* name;
};

class EventServerOracle
    : public EventServerTest,
      public ::testing::WithParamInterface<TransportCase> {};

TEST_P(EventServerOracle, MatchesOfflineDriver) {
  const TransportCase& c = GetParam();
  start_server({}, c.kind);
  const SyntheticEventStream::Params params = oracle_params(7);
  const std::uint64_t total = 3000;

  FrameChannel channel = connect();
  HelloBody h;
  h.num_threads = 4;
  h.async_workers = c.async_workers;
  h.gc_every = c.gc_every;
  hello(channel, h);

  SyntheticEventStream stream(params);
  std::vector<VectorClock> prev(params.num_threads,
                                VectorClock(params.num_threads));
  stream_events(channel, stream, prev, total);

  ASSERT_TRUE(channel.write_frame(encode_shutdown()));
  const DecodedFrame goodbye = read_frame(channel);
  ASSERT_EQ(goodbye.op, Op::kGoodbye);
  EXPECT_EQ(goodbye.counts.events, total);
  EXPECT_EQ(goodbye.counts.outstanding_pins, 0u);
  // The differential requirement: bit-identical to the offline driver,
  // regardless of transport.
  EXPECT_EQ(goodbye.counts.states, oracle_states(params, total));

  // Stream 0: the connection closes when the session ends, mirroring the
  // thread front end.
  std::vector<std::uint8_t> payload;
  EXPECT_EQ(channel.read_frame(&payload), ReadStatus::kEof);

  await_completed(1);
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.sessions_completed, 1u);
  EXPECT_EQ(stats.clean_shutdowns, 1u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.leaked_pins, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Transports, EventServerOracle,
    ::testing::Values(
        TransportCase{Endpoint::Kind::kUnix, 0, 0, "unix_inline"},
        TransportCase{Endpoint::Kind::kUnix, 2, 64, "unix_pooled_gc"},
        TransportCase{Endpoint::Kind::kTcp, 0, 0, "tcp_inline"},
        TransportCase{Endpoint::Kind::kTcp, 2, 64, "tcp_pooled_gc"}),
    [](const auto& info) { return info.param.name; });

// ---- stream-id multiplexing ----

// Four logical sessions interleave over ONE connection; every stream must
// match its own per-seed oracle, and the connection must outlive them all
// (nonzero streams do not close the socket).
TEST_F(EventServerTest, MultiplexedStreamsEachMatchTheirOracle) {
  start_server();
  constexpr std::uint32_t kStreams = 4;
  const std::uint64_t total = 1200;
  FrameChannel channel = connect();

  struct Stream {
    std::uint32_t wire_id;
    SyntheticEventStream::Params params;
    std::unique_ptr<SyntheticEventStream> source;
    std::vector<VectorClock> prev;
  };
  std::vector<Stream> streams;
  for (std::uint32_t s = 0; s < kStreams; ++s) {
    Stream st;
    st.wire_id = s + 1;
    st.params = oracle_params(40 + s);
    st.source = std::make_unique<SyntheticEventStream>(st.params);
    st.prev.assign(st.params.num_threads,
                   VectorClock(st.params.num_threads));
    HelloBody h;
    h.num_threads = st.params.num_threads;
    h.async_workers = (s % 2 == 0) ? 0 : 2;
    h.gc_every = (s % 2 == 0) ? 0 : 64;
    hello(channel, h, st.wire_id);
    streams.push_back(std::move(st));
  }

  // Round-robin interleave: one event per stream per round, so the
  // demultiplexer constantly switches sessions.
  for (std::uint64_t i = 0; i < total; ++i) {
    for (Stream& st : streams) {
      stream_events(channel, *st.source, st.prev, 1, st.wire_id);
    }
  }

  for (Stream& st : streams) {
    ASSERT_TRUE(channel.write_frame(encode_shutdown(), st.wire_id));
    const DecodedFrame goodbye = read_frame(channel, st.wire_id);
    ASSERT_EQ(goodbye.op, Op::kGoodbye);
    EXPECT_EQ(goodbye.counts.events, total);
    EXPECT_EQ(goodbye.counts.outstanding_pins, 0u);
    EXPECT_EQ(goodbye.counts.states, oracle_states(st.params, total))
        << "stream " << st.wire_id;
  }

  // All four sessions ended; the connection is still alive — a fresh
  // stream on the same socket works.
  HelloBody h;
  h.num_threads = 2;
  hello(channel, h, 99);
  ASSERT_TRUE(channel.write_frame(encode_shutdown(), 99));
  EXPECT_EQ(read_frame(channel, 99).op, Op::kGoodbye);

  await_completed(kStreams + 1);
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.sessions_accepted, kStreams + 1);
  EXPECT_EQ(stats.clean_shutdowns, kStreams + 1);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.leaked_pins, 0u);
}

// The session limit applies per STREAM, answers the typed error on that
// stream only, keeps the connection and existing sessions alive — and (the
// S4 contract) counts as a rejection, not a protocol error.
TEST_F(EventServerTest, SessionLimitRejectsStreamNotConnection) {
  EpollServer::Options options;
  options.max_sessions = 1;
  start_server(std::move(options));
  FrameChannel channel = connect();
  HelloBody h;
  h.num_threads = 2;
  hello(channel, h, 1);

  // Stream 2 is over the limit: typed Error on stream 2, connection lives.
  ASSERT_TRUE(channel.write_frame(encode_hello(h), 2));
  const DecodedFrame err = read_frame(channel, 2);
  ASSERT_EQ(err.op, Op::kError);
  EXPECT_EQ(err.error.code, ErrorCode::kSessionLimit);

  // Later frames for the rejected stream are dropped silently (the error
  // went out once); stream 1 still answers.
  ASSERT_TRUE(channel.write_frame(encode_poll(), 2));
  ASSERT_TRUE(channel.write_frame(encode_poll(), 1));
  EXPECT_EQ(read_frame(channel, 1).op, Op::kStats);

  // Once stream 1 ends, a new stream fits under the limit again.
  ASSERT_TRUE(channel.write_frame(encode_shutdown(), 1));
  EXPECT_EQ(read_frame(channel, 1).op, Op::kGoodbye);
  await_completed(1);
  hello(channel, h, 3);
  ASSERT_TRUE(channel.write_frame(encode_shutdown(), 3));
  EXPECT_EQ(read_frame(channel, 3).op, Op::kGoodbye);

  await_completed(2);
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.sessions_accepted, 3u);
  EXPECT_EQ(stats.sessions_rejected, 1u);
  EXPECT_EQ(stats.clean_shutdowns, 2u);
  // The S4 regression: a limiter refusal is NOT a protocol error.
  EXPECT_EQ(stats.protocol_errors, 0u);
}

// ---- per-tenant backpressure ----

// Two streams sharing a tenant id share ONE submit gate: with a tiny
// tenant budget and pooled workers both still complete correctly, and the
// server records the backpressure engagements.
TEST_F(EventServerTest, TenantBudgetSharedAcrossStreams) {
  EpollServer::Options options;
  options.tenant_budget_bytes = 1;  // passage rule only: one interval at a time
  start_server(std::move(options));
  const std::uint64_t total = 600;
  FrameChannel channel = connect();

  std::vector<SyntheticEventStream::Params> params;
  std::vector<std::unique_ptr<SyntheticEventStream>> sources;
  std::vector<std::vector<VectorClock>> prevs;
  for (std::uint32_t s = 0; s < 2; ++s) {
    params.push_back(oracle_params(70 + s));
    sources.push_back(std::make_unique<SyntheticEventStream>(params.back()));
    prevs.emplace_back(params.back().num_threads,
                       VectorClock(params.back().num_threads));
    HelloBody h;
    h.num_threads = params.back().num_threads;
    h.async_workers = 2;  // pooled: intervals are in flight while we submit
    h.gc_every = 32;
    h.tenant_id = 42;  // both streams charge the same quota
    hello(channel, h, s + 1);
  }
  for (std::uint64_t i = 0; i < total; ++i) {
    for (std::uint32_t s = 0; s < 2; ++s) {
      stream_events(channel, *sources[s], prevs[s], 1, s + 1);
    }
  }
  for (std::uint32_t s = 0; s < 2; ++s) {
    ASSERT_TRUE(channel.write_frame(encode_shutdown(), s + 1));
    const DecodedFrame goodbye = read_frame(channel, s + 1);
    ASSERT_EQ(goodbye.op, Op::kGoodbye);
    EXPECT_EQ(goodbye.counts.events, total);
    EXPECT_EQ(goodbye.counts.states, oracle_states(params[s], total))
        << "stream " << (s + 1);
  }
  await_completed(2);
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.leaked_pins, 0u);
  // A 1-byte shared budget with pooled intervals must have engaged the
  // gate: the notify path ran, not just the happy path.
  EXPECT_GT(stats.submit_stalls, 0u);
}

// The configured eviction-alert threshold travels in every Stats reply;
// the flag trips once window_evictions reaches it. Under the EnumGuard pin
// protocol evictions stay at zero (see race_predicate.hpp), so a healthy
// windowed run must report the threshold WITHOUT the alert — the alert
// firing is reserved for the anomaly it exists to catch.
TEST_F(EventServerTest, EvictionAlertThresholdSurfacesInStats) {
  EpollServer::Options options;
  options.eviction_alert_threshold = 1;
  start_server(std::move(options));
  FrameChannel channel = connect();
  HelloBody h;
  h.num_threads = 2;
  h.gc_every = 8;  // aggressive window: evictions all but guaranteed
  hello(channel, h);

  // Before any events: threshold echoed, alert clear.
  ASSERT_TRUE(channel.write_frame(encode_poll()));
  DecodedFrame stats = read_frame(channel);
  ASSERT_EQ(stats.op, Op::kStats);
  EXPECT_EQ(stats.stats.eviction_alert_threshold, 1u);
  EXPECT_FALSE(stats.stats.eviction_alert);

  SyntheticEventStream::Params params;
  params.num_threads = 2;
  params.num_locks = 2;
  params.sync_probability = 0.8;
  SyntheticEventStream stream(params);
  std::vector<VectorClock> prev(2, VectorClock(2));
  stream_events(channel, stream, prev, 400);
  ASSERT_TRUE(channel.write_frame(encode_drain()));
  const DecodedFrame drained = read_frame(channel);
  ASSERT_EQ(drained.op, Op::kDrained);

  ASSERT_TRUE(channel.write_frame(encode_poll()));
  stats = read_frame(channel);
  ASSERT_EQ(stats.op, Op::kStats);
  EXPECT_EQ(stats.stats.eviction_alert_threshold, 1u);
  // Alert iff the counter crossed the threshold — and under the pin
  // protocol the counter must still be zero, so the flag stays down even
  // at threshold 1 on an aggressively windowed run.
  EXPECT_EQ(stats.stats.eviction_alert,
            stats.stats.counts.window_evictions >= 1);
  EXPECT_EQ(stats.stats.counts.window_evictions, 0u);
  EXPECT_GT(stats.stats.counts.reclaimed_events, 0u)
      << "gc_every=8 over 400 events should reclaim; workload drifted?";

  ASSERT_TRUE(channel.write_frame(encode_shutdown()));
  EXPECT_EQ(read_frame(channel).op, Op::kGoodbye);
}

// ---- the scale soak ----

// Thousands of idle multiplexed sessions plus a band of active streams on
// one reactor thread: every session must complete, no fd may leak, no pin
// may leak, and active streams must still match their oracles (idle load
// must not corrupt anyone).
TEST_F(EventServerTest, SoakIdleThousandsPlusActiveStreams) {
  constexpr std::uint32_t kConns = 8;
  constexpr std::uint32_t kStreamsPerConn = 256;   // 2048 idle sessions
  constexpr std::uint32_t kActive = 32;
  constexpr std::uint64_t kActiveEvents = 300;

  EpollServer::Options options;
  options.max_sessions = kConns * kStreamsPerConn + kActive + 8;
  start_server(std::move(options));
  const std::size_t fds_before = open_fd_count();

  // Ramp the idle fleet: Hello on every stream, then silence.
  std::vector<FrameChannel> idle;
  idle.reserve(kConns);
  HelloBody idle_hello;
  idle_hello.num_threads = 2;
  for (std::uint32_t c = 0; c < kConns; ++c) {
    idle.push_back(connect());
    for (std::uint32_t s = 0; s < kStreamsPerConn; ++s) {
      hello(idle.back(), idle_hello, s + 1);
    }
  }

  // The active band: one extra connection, kActive streams with real work.
  FrameChannel active = connect();
  std::vector<SyntheticEventStream::Params> params;
  std::vector<std::unique_ptr<SyntheticEventStream>> sources;
  std::vector<std::vector<VectorClock>> prevs;
  for (std::uint32_t s = 0; s < kActive; ++s) {
    params.push_back(oracle_params(900 + s));
    sources.push_back(std::make_unique<SyntheticEventStream>(params.back()));
    prevs.emplace_back(params.back().num_threads,
                       VectorClock(params.back().num_threads));
    HelloBody h;
    h.num_threads = params.back().num_threads;
    h.async_workers = (s % 4 == 0) ? 2 : 0;
    h.gc_every = (s % 2 == 0) ? 64 : 0;
    hello(active, h, s + 1);
  }
  for (std::uint64_t i = 0; i < kActiveEvents; ++i) {
    for (std::uint32_t s = 0; s < kActive; ++s) {
      stream_events(active, *sources[s], prevs[s], 1, s + 1);
    }
  }
  for (std::uint32_t s = 0; s < kActive; ++s) {
    ASSERT_TRUE(active.write_frame(encode_shutdown(), s + 1));
    const DecodedFrame goodbye = read_frame(active, s + 1);
    ASSERT_EQ(goodbye.op, Op::kGoodbye);
    EXPECT_EQ(goodbye.counts.states, oracle_states(params[s], kActiveEvents))
        << "active stream " << (s + 1);
    EXPECT_EQ(goodbye.counts.outstanding_pins, 0u);
  }

  // Wind the idle fleet down.
  for (std::uint32_t c = 0; c < kConns; ++c) {
    for (std::uint32_t s = 0; s < kStreamsPerConn; ++s) {
      ASSERT_TRUE(idle[c].write_frame(encode_shutdown(), s + 1));
      EXPECT_EQ(read_frame(idle[c], s + 1).op, Op::kGoodbye);
    }
  }

  const std::uint64_t expected = kConns * kStreamsPerConn + kActive;
  await_completed(expected);
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.sessions_completed, expected);
  EXPECT_EQ(stats.clean_shutdowns, expected);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.leaked_pins, 0u);

  // Close the client side; once the server reaps its connections the fd
  // table must be back at the baseline (small slack for the reactor's own
  // plumbing churn).
  idle.clear();
  server_->stop();
  server_.reset();
  EXPECT_LE(open_fd_count(), fds_before + 4);
}

// ---- TCP robustness ----

// A TCP client killed mid-frame (header promised, connection reset) must
// end its sessions with a typed accounting — pins released, no abort.
TEST_F(EventServerTest, TcpKillMidStreamReleasesEverything) {
  start_server({}, Endpoint::Kind::kTcp);
  {
    FrameChannel channel = connect();
    HelloBody h;
    h.num_threads = 4;
    h.async_workers = 2;
    h.gc_every = 8;  // pins active on in-flight intervals
    hello(channel, h);
    const SyntheticEventStream::Params params = oracle_params(17);
    SyntheticEventStream stream(params);
    std::vector<VectorClock> prev(4, VectorClock(4));
    stream_events(channel, stream, prev, 500);
    // Die mid-frame: half a header promising more (raw ::write on purpose —
    // the test needs bytes FrameChannel would never emit), then the channel
    // destructor closes the socket with intervals still in flight.
    const std::uint8_t half_header[4] = {100, 0, 0, 0};
    ASSERT_EQ(::write(channel.fd(), half_header, sizeof(half_header)), 4);
  }
  await_completed(1);
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.sessions_completed, 1u);
  EXPECT_EQ(stats.clean_shutdowns, 0u);
  EXPECT_EQ(stats.leaked_pins, 0u);
}

// Half-close: the client shuts down its write side without Shutdown. The
// server treats the EOF as an orderly end, finishes the session, closes.
TEST_F(EventServerTest, TcpHalfCloseEndsSessionCleanly) {
  start_server({}, Endpoint::Kind::kTcp);
  FrameChannel channel = connect();
  HelloBody h;
  h.num_threads = 4;
  hello(channel, h);
  const SyntheticEventStream::Params params = oracle_params(23);
  SyntheticEventStream stream(params);
  std::vector<VectorClock> prev(4, VectorClock(4));
  stream_events(channel, stream, prev, 300);
  channel.shutdown_write();
  std::vector<std::uint8_t> payload;
  EXPECT_EQ(channel.read_frame(&payload), ReadStatus::kEof);
  await_completed(1);
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.sessions_completed, 1u);
  EXPECT_EQ(stats.protocol_errors, 0u);  // EOF at a boundary is not an error
  EXPECT_EQ(stats.leaked_pins, 0u);
}

// Fuzzed well-framed garbage over TCP: every connection must get a typed
// Error frame and a close — never a hang, never an abort, never a pin.
TEST_F(EventServerTest, TcpFuzzedPayloadsAnswerTypedErrors) {
  start_server({}, Endpoint::Kind::kTcp);
  std::mt19937 rng(0xFEEDu);
  constexpr int kRounds = 24;
  for (int round = 0; round < kRounds; ++round) {
    FrameChannel channel = connect();
    std::vector<std::uint8_t> garbage(1 + rng() % 64);
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
    // Keep a handful of rounds on established sessions so in-session
    // garbage is covered too.
    if (round % 3 == 0) {
      HelloBody h;
      h.num_threads = 2;
      hello(channel, h);
    }
    ASSERT_TRUE(channel.write_frame(garbage, rng() % 4));
    // Half-close so the server always has a reason to finish with us, then
    // drain its replies: every frame must decode (typed Errors included),
    // and the connection must reach EOF — never a hang, never an abort.
    channel.shutdown_write();
    std::vector<std::uint8_t> payload;
    std::uint32_t stream = 0;
    while (true) {
      const ReadStatus status = channel.read_frame(&payload, &stream);
      if (status != ReadStatus::kFrame) {
        EXPECT_EQ(status, ReadStatus::kEof);
        break;
      }
      DecodedFrame frame;
      const auto err = decode_frame(payload, &frame);
      ASSERT_FALSE(err.has_value()) << (err ? err->message : "");
    }
  }
  await_completed(1);  // at least the established-session rounds completed
  EXPECT_EQ(server_->stats().leaked_pins, 0u);
}

// ---- hangup surfacing and paused-reads teardown ----

// EPOLLERR/EPOLLHUP are level-triggered and unmaskable: epoll reports them
// even for an fd whose interest was dropped to 0 (exactly what the server
// does to a gate-blocked connection). The loop must surface them as
// kHangup so such a handler can tear the fd down instead of ignoring an
// event that will re-fire forever.
TEST(EventLoopHangup, SurfacedToZeroInterestFds) {
  int raw[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, raw), 0);
  UniqueFd ours(raw[0]);
  UniqueFd theirs(raw[1]);
  EventLoop loop;
  ASSERT_TRUE(loop.valid()) << loop.error();
  Mutex mutex;
  CondVar cv;
  std::uint32_t seen = 0;
  bool fired = false;
  // Interest 0: the paused-connection shape. Only ERR/HUP can arrive.
  ASSERT_TRUE(loop.add(ours.get(), 0, [&](std::uint32_t ready) {
    MutexLock lock(mutex);
    seen = ready;
    fired = true;
    cv.notify_all();
  }));
  std::thread runner([&] { loop.run(); });
  theirs.reset();  // peer dies
  {
    MutexLock lock(mutex);
    while (!fired) {
      ASSERT_TRUE(cv.wait_for(mutex, kWait)) << "hangup never surfaced";
    }
  }
  loop.stop();
  runner.join();
  EXPECT_NE(seen & EventLoop::kHangup, 0u);
  // Still folded into kReadable too, for the common read-error path.
  EXPECT_NE(seen & EventLoop::kReadable, 0u);
}

// A peer that dies by RST while the server has the connection's reads
// paused under submit backpressure must still be torn down (pins released,
// session finished) — the regression was a reactor that busy-spun on the
// unmaskable ERR/HUP event forever because the blocked connection never
// read and never tore down.
TEST_F(EventServerTest, TcpAbortWhileBackpressuredTearsConnectionDown) {
  EpollServer::Options options;
  options.submit_budget_bytes = 1;  // passage rule only: reads pause often
  start_server(std::move(options), Endpoint::Kind::kTcp);
  {
    FrameChannel channel = connect();
    HelloBody h;
    h.num_threads = 4;
    h.async_workers = 2;
    h.gc_every = 8;  // pins active on in-flight intervals
    hello(channel, h);
    const SyntheticEventStream::Params params = oracle_params(31);
    SyntheticEventStream stream(params);
    std::vector<VectorClock> prev(4, VectorClock(4));
    stream_events(channel, stream, prev, 400);
    // Die by RST, not FIN: SO_LINGER 0 discards the server's unread data
    // and raises EPOLLERR, hitting the paused-reads teardown whenever the
    // 1-byte budget had the connection blocked at that moment.
    struct linger lg = {1, 0};
    ASSERT_EQ(::setsockopt(channel.fd(), SOL_SOCKET, SO_LINGER, &lg,
                           sizeof(lg)),
              0);
  }
  await_completed(1);
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.sessions_completed, 1u);
  EXPECT_EQ(stats.clean_shutdowns, 0u);
  EXPECT_EQ(stats.leaked_pins, 0u);
}

// ---- rejected-stream flood ----

// At --max-sessions every new stream id costs the server a tracked
// rejected_streams entry plus an Error frame. The set is capped: a client
// spraying distinct over-limit stream ids gets its connection closed after
// a bounded number of typed refusals instead of growing server memory one
// entry per id from a single connection.
TEST_F(EventServerTest, RejectedStreamFloodClosesConnection) {
  EpollServer::Options options;
  options.max_sessions = 1;
  start_server(std::move(options));
  FrameChannel channel = connect();
  HelloBody h;
  h.num_threads = 2;
  hello(channel, h, 1);  // occupies the only session slot
  constexpr std::uint32_t kFlood = 64;  // comfortably past the cap
  bool cut_off_mid_flood = false;
  for (std::uint32_t s = 0; s < kFlood; ++s) {
    // A failed write means the server already dropped us — the cap at
    // work; keep going only while the pipe is up.
    if (!channel.write_frame(encode_hello(h), 2 + s)) {
      cut_off_mid_flood = true;
      break;
    }
  }
  // Guarantees eventual termination even on a server without the cap, so
  // the pre-fix failure mode is a bounded assertion failure, not a hang.
  if (!cut_off_mid_flood) channel.shutdown_write();
  std::vector<std::uint8_t> payload;
  std::uint32_t stream = 0;
  std::uint32_t errors = 0;
  while (true) {
    const ReadStatus status = channel.read_frame(&payload, &stream);
    if (status != ReadStatus::kFrame) {
      // The cutoff is abrupt by design (the client is hostile): the server
      // closes with flood frames still unread, so the client may see a
      // reset (kError) rather than an orderly EOF.
      EXPECT_TRUE(status == ReadStatus::kEof || status == ReadStatus::kError)
          << to_string(status);
      break;
    }
    DecodedFrame frame;
    const auto err = decode_frame(payload, &frame);
    ASSERT_FALSE(err.has_value()) << (err ? err->message : "");
    ASSERT_EQ(frame.op, Op::kError);
    EXPECT_EQ(frame.error.code, ErrorCode::kSessionLimit);
    ++errors;
  }
  // Pre-fix: one Error per sprayed id (= kFlood) and an orderly EOF only
  // after serving the full flood. Post-fix the connection dies at the cap,
  // well short of it (the reset may even discard buffered Errors).
  EXPECT_LT(errors, kFlood);
  await_completed(1);  // stream 1 went down with the connection
  EXPECT_EQ(server_->stats().leaked_pins, 0u);
}

}  // namespace
}  // namespace paramount::service
