// Offline ParaMount (Algorithm 1 + Theorem 2): exactly-once parallel
// enumeration that matches the sequential algorithms for every subroutine,
// worker count and topological policy; plus the schedule simulator.
#include "core/paramount.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "core/schedule_sim.hpp"
#include "enumeration/bfs_enumerator.hpp"
#include "poset/lattice.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace paramount {
namespace {

using testing::all_distinct;
using testing::as_set;
using testing::key_of;
using testing::make_antichain;
using testing::make_chain;
using testing::make_figure4_poset;
using testing::make_random;
using testing::Key;

std::vector<Key> collect_paramount(const Poset& poset,
                                   const ParamountOptions& options,
                                   ParamountResult* result_out = nullptr) {
  Mutex mutex;
  std::vector<Key> states;
  const ParamountResult result =
      enumerate_paramount(poset, options, [&](const Frontier& f) {
        MutexLock guard(mutex);
        states.push_back(key_of(f));
      });
  if (result_out != nullptr) *result_out = result;
  return states;
}

TEST(Paramount, EmptyPosetYieldsEmptyState) {
  PosetBuilder builder(2);
  const Poset poset = std::move(builder).build();
  ParamountResult result;
  const auto states = collect_paramount(poset, {}, &result);
  EXPECT_EQ(states, (std::vector<Key>{{0, 0}}));
  EXPECT_EQ(result.states, 1u);
}

TEST(Paramount, Figure4SingleWorker) {
  const Poset poset = make_figure4_poset();
  const auto states = collect_paramount(poset, {});
  EXPECT_EQ(states.size(), 7u);
  EXPECT_TRUE(all_distinct(states));
}

// The central correctness property (Theorem 2): for every combination of
// subroutine, worker count and →p policy, ParaMount enumerates exactly the
// set of consistent states, each exactly once.
class ParamountExactlyOnce
    : public ::testing::TestWithParam<
          std::tuple<EnumAlgorithm, std::size_t, TopoPolicy>> {};

TEST_P(ParamountExactlyOnce, MatchesOracle) {
  const auto [subroutine, workers, policy] = GetParam();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Poset poset = make_random(4, 32, 0.35, seed);
    std::set<Key> oracle;
    for (const Frontier& f : all_ideals(poset)) oracle.insert(key_of(f));

    ParamountOptions options;
    options.subroutine = subroutine;
    options.num_workers = workers;
    options.topo_policy = policy;
    options.seed = seed;
    ParamountResult result;
    const auto states = collect_paramount(poset, options, &result);

    EXPECT_TRUE(all_distinct(states)) << "a state was enumerated twice";
    EXPECT_EQ(as_set(states), oracle);
    EXPECT_EQ(result.states, oracle.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ParamountExactlyOnce,
    ::testing::Combine(::testing::Values(EnumAlgorithm::kBfs,
                                         EnumAlgorithm::kLexical,
                                         EnumAlgorithm::kDfs),
                       ::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(TopoPolicy::kInterleave,
                                         TopoPolicy::kThreadMajor,
                                         TopoPolicy::kRandom)));

// The streaming driver (the literal Algorithm 1 with an incremental
// boundary-frontier sweep) must agree with the precomputed-interval driver.
class ParamountStreaming
    : public ::testing::TestWithParam<std::tuple<std::size_t, TopoPolicy>> {};

TEST_P(ParamountStreaming, MatchesOracle) {
  const auto [workers, policy] = GetParam();
  const Poset poset = make_random(4, 30, 0.4, 8);
  std::set<Key> oracle;
  for (const Frontier& f : all_ideals(poset)) oracle.insert(key_of(f));

  const auto order = topological_sort(poset, policy, 8);
  ParamountOptions options;
  options.num_workers = workers;
  options.collect_interval_stats = true;
  Mutex mutex;
  std::vector<Key> states;
  const ParamountResult result = enumerate_paramount_streaming(
      poset, order, options, [&](const Frontier& f) {
        MutexLock guard(mutex);
        states.push_back(key_of(f));
      });
  EXPECT_TRUE(all_distinct(states));
  EXPECT_EQ(as_set(states), oracle);
  EXPECT_EQ(result.states, oracle.size());
  std::uint64_t per_interval = 0;
  for (const IntervalStat& s : result.interval_stats) per_interval += s.states;
  EXPECT_EQ(per_interval, result.states);
}

INSTANTIATE_TEST_SUITE_P(
    Workers, ParamountStreaming,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(TopoPolicy::kInterleave,
                                         TopoPolicy::kRandom)));

// Chunked work assignment must preserve exactly-once for both drivers.
class ParamountChunking : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParamountChunking, ExactlyOnceForAnyChunkSize) {
  const std::size_t chunk = GetParam();
  const Poset poset = make_random(4, 30, 0.4, 12);
  std::set<Key> oracle;
  for (const Frontier& f : all_ideals(poset)) oracle.insert(key_of(f));

  ParamountOptions options;
  options.num_workers = 3;
  options.chunk_size = chunk;

  Mutex mutex;
  std::vector<Key> states;
  auto collector = [&](const Frontier& f) {
    MutexLock guard(mutex);
    states.push_back(key_of(f));
  };

  const ParamountResult precomputed =
      enumerate_paramount(poset, options, collector);
  EXPECT_TRUE(all_distinct(states));
  EXPECT_EQ(as_set(states), oracle);
  EXPECT_EQ(precomputed.states, oracle.size());

  states.clear();
  const auto order = topological_sort(poset, TopoPolicy::kInterleave);
  const ParamountResult streaming =
      enumerate_paramount_streaming(poset, order, options, collector);
  EXPECT_TRUE(all_distinct(states));
  EXPECT_EQ(as_set(states), oracle);
  EXPECT_EQ(streaming.states, oracle.size());
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, ParamountChunking,
                         ::testing::Values(1u, 2u, 5u, 16u, 1000u));

// Scheduler A/B: the work-stealing deques and the PR-1 shared-counter /
// cursor paths must be observationally identical — same state set, same
// exactly-once guarantee — for every workers × chunk × steal combination,
// in both drivers.
class ParamountScheduler
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, bool>> {};

TEST_P(ParamountScheduler, StealAndSharedCounterPathsAgree) {
  const auto [workers, chunk, steal] = GetParam();
  const Poset poset = make_random(4, 30, 0.4, 21);
  std::set<Key> oracle;
  for (const Frontier& f : all_ideals(poset)) oracle.insert(key_of(f));

  ParamountOptions options;
  options.num_workers = workers;
  options.chunk_size = chunk;
  options.steal = steal;

  Mutex mutex;
  std::vector<Key> states;
  auto collector = [&](const Frontier& f) {
    MutexLock guard(mutex);
    states.push_back(key_of(f));
  };

  const ParamountResult offline =
      enumerate_paramount(poset, options, collector);
  EXPECT_TRUE(all_distinct(states));
  EXPECT_EQ(as_set(states), oracle);
  EXPECT_EQ(offline.states, oracle.size());

  states.clear();
  const auto order = topological_sort(poset, TopoPolicy::kInterleave);
  const ParamountResult streaming =
      enumerate_paramount_streaming(poset, order, options, collector);
  EXPECT_TRUE(all_distinct(states));
  EXPECT_EQ(as_set(states), oracle);
  EXPECT_EQ(streaming.states, oracle.size());
}

INSTANTIATE_TEST_SUITE_P(
    WorkersChunksSteal, ParamountScheduler,
    ::testing::Combine(::testing::Values(1u, 2u, 8u),
                       ::testing::Values(1u, 5u), ::testing::Bool()));

// A visitor exception must reach the caller, and sibling workers must stop
// promptly: on a chain every interval is one state, abort is checked
// between intervals, so only a bounded handful of extra states can slip
// through after the throw.
class ParamountThrow : public ::testing::TestWithParam<bool> {};

TEST_P(ParamountThrow, VisitorExceptionPropagatesAndAborts) {
  const bool steal = GetParam();
  constexpr std::size_t kEvents = 500;
  constexpr std::uint64_t kThrowAt = 20;
  const Poset poset = make_chain(kEvents);

  ParamountOptions options;
  options.num_workers = 4;
  options.chunk_size = 2;
  options.steal = steal;

  for (const bool streaming : {false, true}) {
    std::atomic<std::uint64_t> visited{0};
    auto visitor = [&](const Frontier&) {
      if (visited.fetch_add(1) == kThrowAt) {
        throw std::runtime_error("visitor boom");
      }
    };
    if (streaming) {
      const auto order = topological_sort(poset, TopoPolicy::kInterleave);
      EXPECT_THROW(
          enumerate_paramount_streaming(poset, order, options, visitor),
          std::runtime_error);
    } else {
      EXPECT_THROW(enumerate_paramount(poset, options, visitor),
                   std::runtime_error);
    }
    // Well below the 501 total states: the abort flag stopped the sweep.
    EXPECT_LT(visited.load(), kThrowAt + 4 * options.num_workers *
                                             options.chunk_size)
        << (streaming ? "streaming" : "offline");
  }
}

INSTANTIATE_TEST_SUITE_P(StealOnOff, ParamountThrow, ::testing::Bool());

TEST(Paramount, StreamingEmptyPoset) {
  PosetBuilder builder(2);
  const Poset poset = std::move(builder).build();
  std::uint64_t count = 0;
  const ParamountResult result = enumerate_paramount_streaming(
      poset, {}, {}, [&](const Frontier&) { ++count; });
  EXPECT_EQ(result.states, 1u);
  EXPECT_EQ(count, 1u);
}

TEST(Paramount, StreamingRejectsInvalidOrder) {
  const Poset poset = make_figure4_poset();
  EXPECT_DEATH(enumerate_paramount_streaming(
                   poset, {{0, 1}, {0, 2}, {1, 1}, {1, 2}}, {},
                   [](const Frontier&) {}),
               "linear extension");
}

TEST(Paramount, PrecomputedIntervalsReused) {
  const Poset poset = make_random(4, 30, 0.4, 5);
  const auto intervals = compute_intervals(poset, TopoPolicy::kInterleave);
  const auto oracle = count_ideals(poset).value();
  for (const std::size_t workers : {1u, 3u}) {
    ParamountOptions options;
    options.num_workers = workers;
    std::atomic<std::uint64_t> count{0};
    const ParamountResult result = enumerate_paramount(
        poset, intervals, options, [&](const Frontier&) { ++count; });
    EXPECT_EQ(result.states, oracle);
    EXPECT_EQ(count.load(), oracle);
  }
}

TEST(Paramount, IntervalStatsCoverAllStates) {
  const Poset poset = make_random(4, 24, 0.4, 6);
  ParamountOptions options;
  options.collect_interval_stats = true;
  options.num_workers = 2;
  ParamountResult result;
  collect_paramount(poset, options, &result);
  ASSERT_EQ(result.interval_stats.size(), poset.total_events());
  std::uint64_t total = 0;
  for (const IntervalStat& s : result.interval_stats) total += s.states;
  EXPECT_EQ(total, result.states);
}

TEST(Paramount, MemoryBudgetPropagatesAsOom) {
  const Poset poset = make_antichain(14);  // very wide lattice
  MemoryMeter meter(/*budget=*/1024);
  ParamountOptions options;
  options.subroutine = EnumAlgorithm::kBfs;
  options.num_workers = 2;
  options.meter = &meter;
  EXPECT_THROW(
      enumerate_paramount(poset, options, [](const Frontier&) {}),
      MemoryBudgetExceeded);
}

TEST(Paramount, PartitioningShrinksBfsPeakMemory) {
  // The Table-1 effect: bounded BFS over many small intervals needs far less
  // level memory than one BFS over the whole lattice. On a connected random
  // poset the reduction is large (~6-10x); on a pure antichain the last
  // interval still spans half the lattice, so the bound there is weaker.
  const Poset random_poset = make_random(6, 60, 0.2, 3);
  MemoryMeter full_meter;
  enumerate_bfs(random_poset, [](const Frontier&) {}, &full_meter);

  MemoryMeter para_meter;
  ParamountOptions options;
  options.subroutine = EnumAlgorithm::kBfs;
  options.meter = &para_meter;
  enumerate_paramount(random_poset, options, [](const Frontier&) {});
  EXPECT_LT(para_meter.peak_bytes() * 4, full_meter.peak_bytes());

  const Poset antichain = make_antichain(12);
  MemoryMeter full_anti, para_anti;
  enumerate_bfs(antichain, [](const Frontier&) {}, &full_anti);
  options.meter = &para_anti;
  enumerate_paramount(antichain, options, [](const Frontier&) {});
  EXPECT_LT(para_anti.peak_bytes(), full_anti.peak_bytes());
}

// ---- schedule simulator ----

TEST(ScheduleSim, SingleWorkerIsSum) {
  const auto r = simulate_list_schedule({1.0, 2.0, 3.0}, 1);
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
  EXPECT_DOUBLE_EQ(r.total_work, 6.0);
  EXPECT_DOUBLE_EQ(r.imbalance(), 1.0);
}

TEST(ScheduleSim, PerfectSplit) {
  const auto r = simulate_list_schedule({1.0, 1.0, 1.0, 1.0}, 2);
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
}

TEST(ScheduleSim, GreedyAssignsToEarliestFree) {
  // Tasks 3,1,1,1 on 2 workers: w0 gets 3; w1 gets 1,1,1 → makespan 3.
  const auto r = simulate_list_schedule({3.0, 1.0, 1.0, 1.0}, 2);
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);
  EXPECT_DOUBLE_EQ(r.worker_busy[0], 3.0);
  EXPECT_DOUBLE_EQ(r.worker_busy[1], 3.0);
}

TEST(ScheduleSim, StragglerBoundsMakespan) {
  // Tasks 1,1,10,1,1 on 4 workers: the 10 lands on worker 2 at t=0 and
  // dominates; worker 0 additionally gets the last task.
  const auto r = simulate_list_schedule({1.0, 1.0, 10.0, 1.0, 1.0}, 4);
  EXPECT_DOUBLE_EQ(r.makespan, 10.0);
  EXPECT_DOUBLE_EQ(r.worker_busy[2], 10.0);
  EXPECT_GT(r.imbalance(), 1.5);
}

TEST(ScheduleSim, MoreWorkersNeverSlower) {
  std::vector<double> tasks;
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    tasks.push_back(static_cast<double>(rng.next_below(100)) + 1.0);
  }
  double prev = simulate_list_schedule(tasks, 1).makespan;
  for (std::size_t w = 2; w <= 16; w *= 2) {
    const double m = simulate_list_schedule(tasks, w).makespan;
    EXPECT_LE(m, prev + 1e-9);
    prev = m;
  }
}

TEST(ScheduleSim, EmptyTaskList) {
  const auto r = simulate_list_schedule({}, 4);
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);
  EXPECT_DOUBLE_EQ(r.total_work, 0.0);
}

}  // namespace
}  // namespace paramount
