// possibly(φ) / definitely(φ) — handcrafted cases plus a property test
// against a brute-force path search.
#include "detect/modalities.hpp"

#include <gtest/gtest.h>

#include <map>

#include "poset/global_state.hpp"
#include "poset/lattice.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace paramount {
namespace {

using testing::key_of;
using testing::make_figure2_poset;
using testing::make_grid;
using testing::make_random;
using testing::Key;

TEST(Possibly, FindsAWitness) {
  const Poset poset = make_grid(3, 3);
  auto phi = [](const Frontier& g) { return g[0] == 2 && g[1] == 2; };
  const auto result = detect_possibly(poset, phi);
  EXPECT_TRUE(result.holds);
  EXPECT_EQ(key_of(result.witness), (Key{2, 2}));
}

TEST(Possibly, FalseWhenNoStateSatisfies) {
  const Poset poset = make_grid(2, 2);
  auto phi = [](const Frontier& g) { return g[0] == 99; };
  const auto result = detect_possibly(poset, phi);
  EXPECT_FALSE(result.holds);
  EXPECT_EQ(result.states_explored, 9u);  // scanned everything
}

TEST(Possibly, ParallelScanAgrees) {
  const Poset poset = make_random(4, 28, 0.4, 3);
  auto phi = [](const Frontier& g) { return state_rank(g) == 11; };
  const auto sequential = detect_possibly(poset, phi, 1);
  const auto parallel = detect_possibly(poset, phi, 4);
  EXPECT_EQ(sequential.holds, parallel.holds);
}

TEST(Definitely, TrueWhenInitialSatisfies) {
  const Poset poset = make_grid(2, 2);
  auto phi = [](const Frontier& g) { return state_rank(g) == 0; };
  EXPECT_TRUE(detect_definitely(poset, phi).holds);
}

TEST(Definitely, RankCutMustBeCrossed) {
  // Every path from {0,0} to {3,3} passes through rank 3 exactly once.
  const Poset poset = make_grid(3, 3);
  auto phi = [](const Frontier& g) { return state_rank(g) == 3; };
  EXPECT_TRUE(detect_definitely(poset, phi).holds);
}

TEST(Definitely, AvoidableStateIsNotDefinite) {
  // φ = exactly the state {2,0}: paths may advance thread 1 first.
  const Poset poset = make_grid(3, 3);
  auto phi = [](const Frontier& g) { return g[0] == 2 && g[1] == 0; };
  const auto result = detect_definitely(poset, phi);
  EXPECT_FALSE(result.holds);
  EXPECT_EQ(key_of(result.witness), (Key{3, 3}));
}

TEST(Definitely, Figure2SynchronizationPoint) {
  // In the Figure 1/2 program, x.wait (thread 1's first event) follows
  // x.notify: every observation passes a state where thread 0 executed at
  // least 2 events before thread 1 starts — i.e. φ = (G[0] ≥ 2 ∧ G[1] = 0)
  // is definite... only if thread 1 cannot start before: indeed G[1] ≥ 1
  // requires G[0] ≥ 2, and thread 1's first event only appears after.
  const Poset poset = make_figure2_poset();
  auto phi = [](const Frontier& g) { return g[0] >= 2 && g[1] == 0; };
  EXPECT_TRUE(detect_definitely(poset, phi).holds);
}

TEST(Definitely, SingleStatePosetWithoutPhi) {
  PosetBuilder builder(1);
  const Poset poset = std::move(builder).build();
  auto phi = [](const Frontier&) { return false; };
  const auto result = detect_definitely(poset, phi);
  EXPECT_FALSE(result.holds);
}

// Brute force: memoized "does a ¬φ path from `state` reach the final state".
bool avoidable_path(const Poset& poset, const Frontier& state,
                    FunctionRef<bool(const Frontier&)> phi,
                    std::map<Key, bool>& memo) {
  if (phi(state)) return false;
  if (state == poset.full_frontier()) return true;
  const Key key = key_of(state);
  if (auto it = memo.find(key); it != memo.end()) return it->second;
  bool reachable = false;
  for (const Frontier& succ : successors(poset, state)) {
    if (avoidable_path(poset, succ, phi, memo)) {
      reachable = true;
      break;
    }
  }
  memo.emplace(key, reachable);
  return reachable;
}

class ModalitiesAgainstBruteForce
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(ModalitiesAgainstBruteForce, BothModalitiesMatch) {
  const auto [seed, modulus] = GetParam();
  const Poset poset = make_random(4, 20, 0.45, seed);

  auto phi = [&](const Frontier& g) {
    std::uint64_t h = g.hash() ^ (seed * 0x9e37ULL);
    return splitmix64(h) % static_cast<std::uint64_t>(modulus) == 0;
  };

  // possibly: brute scan.
  bool brute_possibly = false;
  for (const Frontier& g : all_ideals(poset)) {
    if (phi(g)) {
      brute_possibly = true;
      break;
    }
  }
  EXPECT_EQ(detect_possibly(poset, phi).holds, brute_possibly);

  // definitely: brute path search.
  std::map<Key, bool> memo;
  const bool counterexample =
      avoidable_path(poset, poset.empty_frontier(), phi, memo);
  EXPECT_EQ(detect_definitely(poset, phi).holds, !counterexample);
}

INSTANTIATE_TEST_SUITE_P(Random, ModalitiesAgainstBruteForce,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u,
                                                              5u),
                                            ::testing::Values(2, 4, 9)));

}  // namespace
}  // namespace paramount
