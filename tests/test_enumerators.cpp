// Correctness of the three sequential enumerators: exactly-once enumeration
// of all consistent states, agreement with the brute-force lattice oracle,
// ordering guarantees, bounded (boxed) enumeration, and the memory-budget
// behaviour.
#include <gtest/gtest.h>

#include "enumeration/bfs_enumerator.hpp"
#include "enumeration/dfs_enumerator.hpp"
#include "enumeration/dispatch.hpp"
#include "enumeration/lexical_enumerator.hpp"
#include "poset/lattice.hpp"
#include "test_helpers.hpp"

namespace paramount {
namespace {

using testing::all_distinct;
using testing::as_set;
using testing::collect_all;
using testing::collect_box;
using testing::key_of;
using testing::make_antichain;
using testing::make_chain;
using testing::make_figure2_poset;
using testing::make_figure4_poset;
using testing::make_grid;
using testing::make_random;
using testing::Key;

constexpr EnumAlgorithm kAll[] = {EnumAlgorithm::kBfs, EnumAlgorithm::kLexical,
                                  EnumAlgorithm::kDfs};

TEST(Enumerators, EmptyPosetHasOneState) {
  PosetBuilder builder(3);
  const Poset poset = std::move(builder).build();
  for (const auto algorithm : kAll) {
    const auto states = collect_all(algorithm, poset);
    ASSERT_EQ(states.size(), 1u) << to_string(algorithm);
    EXPECT_EQ(states[0], (Key{0, 0, 0}));
  }
}

TEST(Enumerators, ChainVisitsEveryPrefix) {
  const Poset poset = make_chain(5);
  for (const auto algorithm : kAll) {
    const auto states = collect_all(algorithm, poset);
    EXPECT_EQ(states.size(), 6u) << to_string(algorithm);
    EXPECT_TRUE(all_distinct(states));
  }
}

TEST(Enumerators, AntichainVisitsAllSubsets) {
  const Poset poset = make_antichain(8);
  for (const auto algorithm : kAll) {
    const auto states = collect_all(algorithm, poset);
    EXPECT_EQ(states.size(), 256u) << to_string(algorithm);
    EXPECT_TRUE(all_distinct(states));
  }
}

TEST(Enumerators, Figure4StatesExactly) {
  // The 7 states of Figure 4(c): all 3×3 frontiers except {2,0} (violates
  // e2[1] → e1[2]) and {0,2} (violates e1[1] → e2[2]).
  const Poset poset = make_figure4_poset();
  const std::set<Key> expected{{0, 0}, {0, 1}, {1, 0}, {1, 1},
                               {1, 2}, {2, 1}, {2, 2}};
  for (const auto algorithm : kAll) {
    const auto states = collect_all(algorithm, poset);
    EXPECT_TRUE(all_distinct(states)) << to_string(algorithm);
    EXPECT_EQ(as_set(states), expected) << to_string(algorithm);
  }
}

TEST(Enumerators, Figure2StatesExactly) {
  // The paper's running example: G1..G8 of Figure 2(b).
  const Poset poset = make_figure2_poset();
  const std::set<Key> expected{{0, 0}, {1, 0}, {2, 0}, {3, 0},
                               {2, 1}, {3, 1}, {2, 2}, {3, 2}};
  for (const auto algorithm : kAll) {
    EXPECT_EQ(as_set(collect_all(algorithm, poset)), expected)
        << to_string(algorithm);
  }
}

TEST(Enumerators, BfsVisitsInRankOrder) {
  const Poset poset = make_random(4, 24, 0.4, 7);
  std::uint64_t last_rank = 0;
  enumerate_bfs(poset, [&](const Frontier& f) {
    const std::uint64_t rank = state_rank(f);
    EXPECT_GE(rank, last_rank);
    last_rank = rank;
  });
}

TEST(Enumerators, LexicalVisitsInStrictLexOrder) {
  const Poset poset = make_random(4, 24, 0.4, 8);
  bool first = true;
  Frontier prev;
  enumerate_lexical(poset, [&](const Frontier& f) {
    if (!first) {
      EXPECT_TRUE(VectorClock::lex_less(prev, f))
          << prev.to_string() << " !< " << f.to_string();
    }
    prev = f;
    first = false;
  });
}

TEST(Enumerators, LexicalSuccessorStandalone) {
  const Poset poset = make_figure4_poset();
  const Frontier lo = poset.empty_frontier();
  const Frontier hi = poset.full_frontier();
  Frontier state = lo;
  std::vector<Key> visited{key_of(state)};
  while (lexical_successor(poset, lo, hi, state)) {
    visited.push_back(key_of(state));
  }
  // The 7 consistent states of Figure 4(c) in lexical order — the
  // inconsistent {0,2} and {2,0} are skipped.
  const std::vector<Key> expected{{0, 0}, {0, 1}, {1, 0}, {1, 1},
                                  {1, 2}, {2, 1}, {2, 2}};
  EXPECT_EQ(visited, expected);
}

// Property test: on random posets all three algorithms agree with the
// brute-force oracle and visit each state exactly once.
class EnumeratorAgreement
    : public ::testing::TestWithParam<std::tuple<int, double, std::uint64_t>> {
};

TEST_P(EnumeratorAgreement, AllAlgorithmsMatchOracle) {
  const auto [processes, density, seed] = GetParam();
  const Poset poset = make_random(processes, 8 * processes, density, seed);
  std::set<Key> oracle;
  for (const Frontier& f : all_ideals(poset)) oracle.insert(key_of(f));

  for (const auto algorithm : kAll) {
    const auto states = collect_all(algorithm, poset);
    EXPECT_TRUE(all_distinct(states))
        << to_string(algorithm) << " visited a state twice";
    EXPECT_EQ(as_set(states), oracle) << to_string(algorithm);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomPosets, EnumeratorAgreement,
    ::testing::Combine(::testing::Values(2, 3, 4, 5),
                       ::testing::Values(0.15, 0.5, 0.9),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

// Property test: bounded enumeration over random boxes visits exactly the
// consistent states inside the box.
class BoundedEnumeration
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(BoundedEnumeration, BoxMatchesFilteredOracle) {
  const auto [seed, density_pct] = GetParam();
  const Poset poset =
      make_random(4, 28, static_cast<double>(density_pct) / 100.0, seed);
  const auto ideals = all_ideals(poset);

  // Build several boxes from pairs of comparable consistent states.
  std::size_t boxes_tested = 0;
  for (std::size_t i = 0; i < ideals.size() && boxes_tested < 12; i += 3) {
    for (std::size_t j = i; j < ideals.size() && boxes_tested < 12; j += 5) {
      const Frontier& lo = ideals[i];
      const Frontier& hi = ideals[j];
      if (!lo.leq(hi)) continue;
      ++boxes_tested;

      std::set<Key> expected;
      for (const Frontier& f : ideals) {
        if (lo.leq(f) && f.leq(hi)) expected.insert(key_of(f));
      }
      for (const auto algorithm : kAll) {
        const auto states = collect_box(algorithm, poset, lo, hi);
        EXPECT_TRUE(all_distinct(states)) << to_string(algorithm);
        EXPECT_EQ(as_set(states), expected)
            << to_string(algorithm) << " box " << lo.to_string() << ".."
            << hi.to_string();
      }
    }
  }
  EXPECT_GT(boxes_tested, 0u);
}

INSTANTIATE_TEST_SUITE_P(RandomBoxes, BoundedEnumeration,
                         ::testing::Combine(::testing::Values(11u, 12u, 13u,
                                                              14u),
                                            ::testing::Values(20, 60)));

TEST(Enumerators, LexicalEqualsSortedLattice) {
  // Stronger than pairwise monotonicity: the lexical visit sequence is
  // exactly the sorted list of all consistent states.
  const Poset poset = make_random(4, 26, 0.4, 19);
  const auto states = collect_all(EnumAlgorithm::kLexical, poset);
  auto sorted = states;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(states, sorted);
}

TEST(Enumerators, DegenerateBoxVisitsSingleState) {
  const Poset poset = make_figure4_poset();
  const Frontier g{1, 1};
  for (const auto algorithm : kAll) {
    const auto states = collect_box(algorithm, poset, g, g);
    ASSERT_EQ(states.size(), 1u);
    EXPECT_EQ(states[0], (Key{1, 1}));
  }
}

TEST(Enumerators, BfsMemoryBudgetTriggersOom) {
  const Poset poset = make_antichain(12);  // 4096 states, wide levels
  MemoryMeter meter(/*budget=*/2048);
  EXPECT_THROW(enumerate_bfs(poset, [](const Frontier&) {}, &meter),
               MemoryBudgetExceeded);
  // All charges must have been rolled back.
  EXPECT_EQ(meter.current_bytes(), 0u);
}

TEST(Enumerators, LexicalUsesConstantMemory) {
  const Poset poset = make_antichain(12);
  MemoryMeter meter;
  const EnumStats stats =
      enumerate_lexical(poset, [](const Frontier&) {}, &meter);
  EXPECT_EQ(stats.states, 4096u);
  EXPECT_LT(stats.peak_bytes, 1024u);  // O(n), not O(width)
}

TEST(Enumerators, BfsPeakMemoryTracksLatticeWidth) {
  MemoryMeter narrow_meter, wide_meter;
  enumerate_bfs(make_chain(64), [](const Frontier&) {}, &narrow_meter);
  enumerate_bfs(make_antichain(12), [](const Frontier&) {}, &wide_meter);
  // A chain has width 1; a 12-antichain has width C(12,6) = 924.
  EXPECT_GT(wide_meter.peak_bytes(), 100 * narrow_meter.peak_bytes());
}

TEST(Enumerators, StatsCountMatchesOracle) {
  const Poset poset = make_random(4, 30, 0.5, 21);
  const auto expected = count_ideals(poset).value();
  for (const auto algorithm : kAll) {
    const EnumStats stats =
        enumerate_all(algorithm, poset, [](const Frontier&) {});
    EXPECT_EQ(stats.states, expected) << to_string(algorithm);
  }
}

TEST(Enumerators, DispatchNamesAlgorithms) {
  EXPECT_STREQ(to_string(EnumAlgorithm::kBfs), "bfs");
  EXPECT_STREQ(to_string(EnumAlgorithm::kLexical), "lexical");
  EXPECT_STREQ(to_string(EnumAlgorithm::kDfs), "dfs");
}

}  // namespace
}  // namespace paramount
