// Tests for the src/obs/ telemetry subsystem: sharded metric aggregation
// under concurrency, log-scale histogram bucketing, Chrome-trace and metrics
// JSON well-formedness (parsed back by a minimal JSON reader), and the
// ThreadPool queue-wait instrumentation under a wait_idle() stress load.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "core/online_paramount.hpp"
#include "core/paramount.hpp"
#include "obs/telemetry.hpp"
#include "poset/poset_builder.hpp"
#include "util/thread_pool.hpp"
#include "workloads/random_poset.hpp"

namespace paramount {
namespace {

using obs::HistogramSnapshot;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::SpanTracer;
using obs::Telemetry;
using obs::TraceSpan;

// ---- a minimal JSON reader (enough to parse back our own exports) ----

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v;

  bool is_object() const { return v.index() == 5; }
  bool is_array() const { return v.index() == 4; }
  const JsonObject& object() const { return *std::get<5>(v); }
  const JsonArray& array() const { return *std::get<4>(v); }
  double number() const { return std::get<double>(v); }
  const std::string& string() const { return std::get<std::string>(v); }
  const JsonValue& at(const std::string& key) const {
    auto it = object().find(key);
    EXPECT_NE(it, object().end()) << "missing key " << key;
    return it->second;
  }
  bool has(const std::string& key) const {
    return is_object() && object().count(key) != 0;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  // Parses the full document; EXPECTs there is no trailing garbage.
  JsonValue parse() {
    const JsonValue v = parse_value();
    skip_ws();
    EXPECT_EQ(pos_, text_.size()) << "trailing JSON garbage";
    return v;
  }

  bool failed() const { return failed_; }

 private:
  void fail(const std::string& why) {
    if (!failed_) ADD_FAILURE() << "JSON parse error at " << pos_ << ": " << why;
    failed_ = true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end");
      return '\0';
    }
    return text_[pos_];
  }

  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  JsonValue parse_value() {
    if (failed_) return JsonValue{nullptr};
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue{parse_string()};
      case 't': return parse_literal("true", JsonValue{true});
      case 'f': return parse_literal("false", JsonValue{false});
      case 'n': return parse_literal("null", JsonValue{nullptr});
      default: return parse_number();
    }
  }

  JsonValue parse_literal(const std::string& lit, JsonValue v) {
    if (text_.compare(pos_, lit.size(), lit) != 0) {
      fail("bad literal");
      return JsonValue{nullptr};
    }
    pos_ += lit.size();
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected number");
      ++pos_;
      return JsonValue{nullptr};
    }
    return JsonValue{std::stod(text_.substr(start, pos_ - start))};
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u':
            // Our exporters only emit \u00XX control escapes.
            if (pos_ + 4 <= text_.size()) {
              c = static_cast<char>(
                  std::stoi(text_.substr(pos_, 4), nullptr, 16));
              pos_ += 4;
            }
            break;
          default: fail("bad escape"); return out;
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) {
      fail("unterminated string");
      return out;
    }
    ++pos_;  // closing quote
    return out;
  }

  JsonValue parse_object() {
    expect('{');
    auto obj = std::make_shared<JsonObject>();
    if (!consume('}')) {
      do {
        std::string key = parse_string();
        expect(':');
        (*obj)[std::move(key)] = parse_value();
        if (failed_) break;
      } while (consume(','));
      expect('}');
    }
    return JsonValue{std::move(obj)};
  }

  JsonValue parse_array() {
    expect('[');
    auto arr = std::make_shared<JsonArray>();
    if (!consume(']')) {
      do {
        arr->push_back(parse_value());
        if (failed_) break;
      } while (consume(','));
      expect(']');
    }
    return JsonValue{std::move(arr)};
  }

  std::string text_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

// ---- metrics registry ----

// Most assertions below check live instrument values, which are all zero in
// a -DPARAMOUNT_NO_TELEMETRY build (mutations compile to no-ops).
#define PM_SKIP_IF_NO_TELEMETRY()                                       \
  if constexpr (!obs::kTelemetryEnabled)                                \
  GTEST_SKIP() << "built with PARAMOUNT_NO_TELEMETRY"

TEST(Metrics, CounterAggregatesShardsExactlyUnderContention) {
  PM_SKIP_IF_NO_TELEMETRY();
  constexpr std::size_t kShards = 8;
  constexpr std::uint64_t kPerShard = 200000;
  MetricsRegistry registry(kShards);
  const obs::MetricId id = registry.counter("test.counter");

  // A concurrent reader snapshots while the writers run: relaxed reads must
  // tear nothing and the counter must be monotonically plausible.
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load()) {
      const MetricsSnapshot snap = registry.snapshot();
      const obs::CounterSnapshot* c = snap.find_counter("test.counter");
      ASSERT_NE(c, nullptr);
      ASSERT_LE(c->total, kShards * kPerShard);
    }
  });

  // parallel_for's work queue hands each shard index to exactly one thread
  // at a time — the single-writer-per-shard contract under real threads.
  parallel_for(kShards, kShards, [&](std::size_t shard) {
    for (std::uint64_t i = 0; i < kPerShard; ++i) registry.add(id, shard);
  });
  stop.store(true);
  snapshotter.join();

  const MetricsSnapshot snap = registry.snapshot();
  const obs::CounterSnapshot* c = snap.find_counter("test.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->total, kShards * kPerShard);
  ASSERT_EQ(c->per_shard.size(), kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(c->per_shard[s], kPerShard);
  }
}

TEST(Metrics, RegistrationIsIdempotentAndKindChecked) {
  PM_SKIP_IF_NO_TELEMETRY();
  MetricsRegistry registry(2);
  const obs::MetricId a = registry.counter("x");
  const obs::MetricId b = registry.counter("x");
  EXPECT_EQ(a, b);
  registry.add(a, 0, 3);
  registry.add(b, 1, 4);
  EXPECT_EQ(registry.snapshot().find_counter("x")->total, 7u);
}

TEST(Metrics, GaugeSumsLastStoredValues) {
  PM_SKIP_IF_NO_TELEMETRY();
  MetricsRegistry registry(3);
  const obs::MetricId g = registry.gauge("depth");
  registry.set(g, 0, 5);
  registry.set(g, 0, 2);  // overwrite, not accumulate
  registry.set(g, 2, 10);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.find_gauge("depth")->total, 12u);
  EXPECT_EQ(snap.find_gauge("depth")->per_shard[0], 2u);
}

TEST(Metrics, HistogramBucketBoundaries) {
  PM_SKIP_IF_NO_TELEMETRY();
  MetricsRegistry registry(1);
  const obs::MetricId h = registry.histogram("sizes");
  // Bucket 0 = {0}; bucket b >= 1 = [2^(b-1), 2^b).
  registry.observe(h, 0, 0);                      // bucket 0
  registry.observe(h, 0, 1);                      // bucket 1
  registry.observe(h, 0, 2);                      // bucket 2
  registry.observe(h, 0, 3);                      // bucket 2
  registry.observe(h, 0, 4);                      // bucket 3
  registry.observe(h, 0, 7);                      // bucket 3
  registry.observe(h, 0, 8);                      // bucket 4
  registry.observe(h, 0, (1ULL << 20) - 1);       // bucket 20
  registry.observe(h, 0, 1ULL << 20);             // bucket 21
  registry.observe(h, 0, ~0ULL);                  // bucket 64 (top)

  const MetricsSnapshot snap = registry.snapshot();
  const HistogramSnapshot* s = snap.find_histogram("sizes");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 10u);
  EXPECT_EQ(s->sum, 0 + 1 + 2 + 3 + 4 + 7 + 8 + ((1ULL << 20) - 1) +
                        (1ULL << 20) + ~0ULL);
  EXPECT_EQ(s->buckets[0], 1u);
  EXPECT_EQ(s->buckets[1], 1u);
  EXPECT_EQ(s->buckets[2], 2u);
  EXPECT_EQ(s->buckets[3], 2u);
  EXPECT_EQ(s->buckets[4], 1u);
  EXPECT_EQ(s->buckets[20], 1u);
  EXPECT_EQ(s->buckets[21], 1u);
  EXPECT_EQ(s->buckets[64], 1u);

  EXPECT_EQ(HistogramSnapshot::bucket_lo(0), 0u);
  EXPECT_EQ(HistogramSnapshot::bucket_hi(0), 1u);
  EXPECT_EQ(HistogramSnapshot::bucket_lo(4), 8u);
  EXPECT_EQ(HistogramSnapshot::bucket_hi(4), 16u);
  EXPECT_EQ(HistogramSnapshot::bucket_hi(64), ~0ULL);
}

TEST(Metrics, HistogramQuantiles) {
  PM_SKIP_IF_NO_TELEMETRY();
  MetricsRegistry registry(1);
  const obs::MetricId h = registry.histogram("q");
  EXPECT_TRUE(std::isnan(
      registry.snapshot().find_histogram("q")->quantile(0.5)));
  for (std::uint64_t v = 1; v <= 1024; ++v) registry.observe(h, 0, v);
  const MetricsSnapshot snap = registry.snapshot();
  const HistogramSnapshot* s = snap.find_histogram("q");
  // Log-bucket resolution: the median of 1..1024 must land within the
  // surrounding power-of-two range.
  EXPECT_GE(s->quantile(0.5), 256.0);
  EXPECT_LE(s->quantile(0.5), 1024.0);
  EXPECT_LE(s->quantile(0.1), s->quantile(0.9));
  EXPECT_LE(s->quantile(1.0), 2048.0);
}

TEST(Metrics, JsonSnapshotParsesBack) {
  PM_SKIP_IF_NO_TELEMETRY();
  MetricsRegistry registry(2);
  registry.add(registry.counter("a.count"), 0, 41);
  registry.add(registry.counter("a.count"), 1, 1);
  registry.set(registry.gauge("g"), 0, 9);
  registry.observe(registry.histogram("h"), 1, 100);

  const std::string json = registry.snapshot().to_json();
  JsonParser parser(json);
  const JsonValue doc = parser.parse();
  ASSERT_FALSE(parser.failed()) << json;

  EXPECT_EQ(doc.at("num_shards").number(), 2.0);
  const JsonArray& counters = doc.at("counters").array();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].at("name").string(), "a.count");
  EXPECT_EQ(counters[0].at("total").number(), 42.0);
  ASSERT_EQ(counters[0].at("per_shard").array().size(), 2u);
  EXPECT_EQ(counters[0].at("per_shard").array()[1].number(), 1.0);

  const JsonArray& histograms = doc.at("histograms").array();
  ASSERT_EQ(histograms.size(), 1u);
  EXPECT_EQ(histograms[0].at("count").number(), 1.0);
  EXPECT_EQ(histograms[0].at("sum").number(), 100.0);
  const JsonArray& buckets = histograms[0].at("buckets").array();
  ASSERT_EQ(buckets.size(), 1u);  // only non-empty buckets are exported
  EXPECT_EQ(buckets[0].array().size(), 3u);
  EXPECT_EQ(buckets[0].array()[2].number(), 1.0);  // [lo, hi, count]
}

// ---- span tracer ----

TEST(Tracer, ChromeTraceJsonParsesBack) {
  PM_SKIP_IF_NO_TELEMETRY();
  SpanTracer tracer(2);
  tracer.record(0, "alpha", "cat0", 100, 50, "states", 7);
  tracer.record(1, "needs \"escaping\"\n", "cat\\1", 200, 25);
  {
    TraceSpan span(&tracer, 0, "raii", "cat0");
  }
  EXPECT_EQ(tracer.recorded(), 3u);

  const std::string json = tracer.to_chrome_json();
  JsonParser parser(json);
  const JsonValue doc = parser.parse();
  ASSERT_FALSE(parser.failed()) << json;

  const JsonArray& events = doc.at("traceEvents").array();
  std::size_t complete = 0, metadata = 0;
  bool saw_escaped = false;
  for (const JsonValue& e : events) {
    const std::string& ph = e.at("ph").string();
    if (ph == "X") {
      ++complete;
      EXPECT_TRUE(e.has("ts"));
      EXPECT_TRUE(e.has("dur"));
      EXPECT_TRUE(e.has("pid"));
      EXPECT_TRUE(e.has("tid"));
      if (e.at("name").string() == "needs \"escaping\"\n") {
        saw_escaped = true;
        EXPECT_EQ(e.at("cat").string(), "cat\\1");
        EXPECT_EQ(e.at("tid").number(), 1.0);
      }
      if (e.at("name").string() == "alpha") {
        EXPECT_EQ(e.at("args").at("states").number(), 7.0);
        EXPECT_DOUBLE_EQ(e.at("ts").number(), 0.1);    // 100 ns = 0.1 us
        EXPECT_DOUBLE_EQ(e.at("dur").number(), 0.05);  // 50 ns
      }
    } else if (ph == "M") {
      ++metadata;
    }
  }
  EXPECT_EQ(complete, 3u);
  EXPECT_EQ(metadata, 2u);  // one thread_name record per shard
  EXPECT_TRUE(saw_escaped);
}

TEST(Tracer, DropsBeyondCapacityAndCounts) {
  PM_SKIP_IF_NO_TELEMETRY();
  SpanTracer tracer(1, /*capacity_per_shard=*/4);
  for (int i = 0; i < 10; ++i) tracer.record(0, "e", "c", i, 1);
  EXPECT_EQ(tracer.recorded(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // The export must still be valid JSON.
  JsonParser parser(tracer.to_chrome_json());
  parser.parse();
  EXPECT_FALSE(parser.failed());
}

TEST(Tracer, RingNewestKeepsLatestSpansAndCountsLosses) {
  PM_SKIP_IF_NO_TELEMETRY();
  SpanTracer tracer(1, /*capacity_per_shard=*/4,
                    SpanTracer::OverflowPolicy::kRingNewest);
  for (std::uint64_t i = 0; i < 10; ++i) {
    tracer.record(0, "e", "c", /*start_ns=*/i, 1, "ordinal", i);
  }
  // The buffer stays at capacity; the 6 *oldest* spans were the ones lost.
  EXPECT_EQ(tracer.recorded(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);

  JsonParser parser(tracer.to_chrome_json());
  const JsonValue doc = parser.parse();
  ASSERT_FALSE(parser.failed());
  std::set<double> ordinals;
  for (const JsonValue& e : doc.at("traceEvents").array()) {
    if (e.at("ph").string() == "X") {
      ordinals.insert(e.at("args").at("ordinal").number());
    }
  }
  EXPECT_EQ(ordinals, (std::set<double>{6, 7, 8, 9}));
}

TEST(Tracer, SpansDroppedCounterMirrorsLostSpansExactly) {
  PM_SKIP_IF_NO_TELEMETRY();
  Telemetry telemetry(2, /*trace_capacity_per_shard=*/4);
  // Shard 0 overflows by 3; shard 1 stays within capacity.
  for (int i = 0; i < 7; ++i) telemetry.tracer().record(0, "e", "c", i, 1);
  for (int i = 0; i < 2; ++i) telemetry.tracer().record(1, "e", "c", i, 1);

  const MetricsSnapshot snap = telemetry.snapshot();
  const auto* drops = snap.find_counter("tracer.spans_dropped");
  ASSERT_NE(drops, nullptr);
  EXPECT_EQ(drops->total, telemetry.tracer().dropped());
  EXPECT_EQ(drops->per_shard[0], 3u);
  EXPECT_EQ(drops->per_shard[1], 0u);
}

TEST(Tracer, SpansDroppedCounterZeroWhenNothingLost) {
  PM_SKIP_IF_NO_TELEMETRY();
  Telemetry telemetry(1, /*trace_capacity_per_shard=*/16);
  for (int i = 0; i < 10; ++i) telemetry.tracer().record(0, "e", "c", i, 1);
  const MetricsSnapshot snap = telemetry.snapshot();
  const auto* drops = snap.find_counter("tracer.spans_dropped");
  ASSERT_NE(drops, nullptr);
  EXPECT_EQ(drops->total, 0u);
  EXPECT_EQ(telemetry.tracer().dropped(), 0u);
}

TEST(Tracer, PosetGaugesRegisteredInTelemetry) {
  Telemetry telemetry(1);
  telemetry.metrics().set(telemetry.poset_resident_bytes, 0, 12345);
  telemetry.metrics().set(telemetry.poset_reclaimed_events, 0, 67);
  const MetricsSnapshot snap = telemetry.snapshot();
  const auto* resident = snap.find_gauge("poset.resident_bytes");
  const auto* reclaimed = snap.find_gauge("poset.reclaimed_events");
  ASSERT_NE(resident, nullptr);
  ASSERT_NE(reclaimed, nullptr);
  if constexpr (obs::kTelemetryEnabled) {
    EXPECT_EQ(resident->total, 12345u);
    EXPECT_EQ(reclaimed->total, 67u);
  }
}

TEST(Tracer, NullTracerSpanIsInert) {
  [[maybe_unused]] TraceSpan inactive;  // default constructed
  TraceSpan null_span(nullptr, 0, "n", "c");
  null_span.set_arg(1);
  EXPECT_EQ(null_span.finish(), 0u);
}

// ---- thread pool queue-wait instrumentation ----

TEST(ThreadPoolTelemetry, WaitIdleStressAccountsEveryTask) {
  PM_SKIP_IF_NO_TELEMETRY();
  constexpr std::size_t kWorkers = 4;
  constexpr int kRounds = 20;
  constexpr int kTasksPerRound = 100;
  Telemetry telemetry(kWorkers);
  ThreadPool pool(kWorkers, &telemetry);

  std::atomic<int> executed{0};
  for (int round = 0; round < kRounds; ++round) {
    for (int t = 0; t < kTasksPerRound; ++t) {
      // relaxed: execution tally, checked only after wait_idle().
      pool.submit([&] { executed.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();  // stress the idle tracking against telemetry writes
    const MetricsSnapshot snap = telemetry.snapshot();
    const std::uint64_t expected =
        static_cast<std::uint64_t>(round + 1) * kTasksPerRound;
    EXPECT_EQ(snap.find_counter("pool.tasks")->total, expected);
    EXPECT_EQ(snap.find_histogram("pool.queue_wait_ns")->count, expected);
  }
  EXPECT_EQ(executed.load(), kRounds * kTasksPerRound);
  if constexpr (obs::kTelemetryEnabled) {
    // Every task also produced a "task" span (buffers are large enough).
    EXPECT_EQ(telemetry.tracer().recorded() + telemetry.tracer().dropped(),
              static_cast<std::uint64_t>(kRounds) * kTasksPerRound);
  }
}

// ---- driver integration ----

Poset telemetry_test_poset() {
  RandomPosetParams params;
  params.num_processes = 6;
  params.num_events = 36;
  params.message_probability = 0.8;
  params.seed = 17;
  return make_random_poset(params);
}

TEST(DriverTelemetry, OfflineCountersMatchResult) {
  const Poset poset = telemetry_test_poset();
  Telemetry telemetry(4);
  ParamountOptions options;
  options.num_workers = 4;
  options.telemetry = &telemetry;
  const ParamountResult result =
      enumerate_paramount(poset, options, [](const Frontier&) {});

  const MetricsSnapshot snap = telemetry.snapshot();
  if constexpr (obs::kTelemetryEnabled) {
    EXPECT_EQ(snap.find_counter("paramount.states")->total, result.states);
    EXPECT_EQ(snap.find_counter("paramount.intervals")->total,
              poset.total_events());
    EXPECT_EQ(snap.find_histogram("paramount.interval_states")->count,
              poset.total_events());
    EXPECT_EQ(snap.find_histogram("paramount.interval_ns")->count,
              poset.total_events());
    EXPECT_GT(telemetry.tracer().recorded(), 0u);
  } else {
    EXPECT_EQ(snap.find_counter("paramount.states")->total, 0u);
  }
}

TEST(DriverTelemetry, StreamingRecordsQueueWaitAndGbnd) {
  const Poset poset = telemetry_test_poset();
  const auto order = topological_sort(poset, TopoPolicy::kInterleave);
  Telemetry telemetry(3);
  ParamountOptions options;
  options.num_workers = 3;
  options.telemetry = &telemetry;
  const ParamountResult result = enumerate_paramount_streaming(
      poset, order, options, [](const Frontier&) {});

  if constexpr (obs::kTelemetryEnabled) {
    const MetricsSnapshot snap = telemetry.snapshot();
    EXPECT_EQ(snap.find_counter("paramount.states")->total, result.states);
    // One claim and one queue-wait observation per event; Gbnd snapshots
    // happen once per non-empty cursor batch, so at most once per claim.
    const std::uint64_t claims = snap.find_counter("paramount.claims")->total;
    EXPECT_EQ(claims, order.size());
    EXPECT_EQ(snap.find_histogram("pool.queue_wait_ns")->count, claims);
    const std::uint64_t gbnd =
        snap.find_histogram("paramount.gbnd_ns")->count;
    EXPECT_GE(gbnd, 1u);
    EXPECT_LE(gbnd, claims);
  }
}

// Workers that find the cursor already exhausted on their way out must not
// record anything: with more workers than events, claims still equals the
// event count exactly, on both scheduler paths.
TEST(DriverTelemetry, StreamingEmptyClaimsAreNotCounted) {
  PosetBuilder builder(1);
  for (int i = 0; i < 3; ++i) builder.add_event(0);
  const Poset poset = std::move(builder).build();
  const auto order = topological_sort(poset, TopoPolicy::kInterleave);
  for (const bool steal : {false, true}) {
    Telemetry telemetry(8);
    ParamountOptions options;
    options.num_workers = 8;
    options.steal = steal;
    options.telemetry = &telemetry;
    enumerate_paramount_streaming(poset, order, options,
                                  [](const Frontier&) {});
    if constexpr (obs::kTelemetryEnabled) {
      const MetricsSnapshot snap = telemetry.snapshot();
      EXPECT_EQ(snap.find_counter("paramount.claims")->total, order.size())
          << "steal=" << steal;
      EXPECT_LE(snap.find_histogram("paramount.gbnd_ns")->count,
                order.size())
          << "steal=" << steal;
    }
  }
}

TEST(DriverTelemetry, OnlineInlineModeShardsBySubmitter) {
  const Poset poset = telemetry_test_poset();
  const auto order = topological_sort(poset, TopoPolicy::kInterleave);
  Telemetry telemetry(poset.num_threads());
  OnlineParamount::Options options;
  options.telemetry = &telemetry;
  OnlineParamount online(poset.num_threads(), options,
                         [](const OnlinePoset&, EventId, const Frontier&) {});
  for (const EventId id : order) {
    const Event& e = poset.event(id);
    online.submit(id.tid, e.kind, e.object, e.vc);
  }
  online.drain();

  if constexpr (obs::kTelemetryEnabled) {
    const MetricsSnapshot snap = telemetry.snapshot();
    EXPECT_EQ(snap.find_counter("paramount.states")->total,
              online.states_enumerated());
    EXPECT_EQ(snap.find_counter("paramount.intervals")->total,
              online.intervals_processed());
    EXPECT_EQ(snap.find_histogram("paramount.gbnd_ns")->count,
              poset.total_events());
  }
}

}  // namespace
}  // namespace paramount
