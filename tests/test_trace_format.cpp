// The .pmt trace format: round-trips, hostile files, and the replay oracle.
//
// Three layers of guarantees, mirroring the format's contract
// (src/trace/format.hpp):
//   1. Fidelity — what TraceWriter writes, TraceReader returns bit-exactly,
//      including access lists, across every scenario shape and across chunk
//      boundaries; the footer index seeks to the same events a sequential
//      scan reaches.
//   2. Robustness — a hostile file (every truncation point, surgically
//      corrupted fields, hand-assembled malformed records, random garbage,
//      random mutations) yields the documented typed TraceError. Never an
//      abort: these tests run the decoder in-process under the sanitizer
//      build, where any overread or crash fails the suite.
//   3. Oracle — replaying a trace through the offline, streaming, and
//      online drivers and through an in-process paramountd yields state
//      counts bit-identical to enumerating the same events directly from
//      memory, for every scenario and for a traced-program recording.
#include "trace/format.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/paramount.hpp"
#include "poset/poset_builder.hpp"
#include "runtime/recording_sink.hpp"
#include "runtime/trace_file_sink.hpp"
#include "runtime/tracer.hpp"
#include "service/frame.hpp"
#include "service/server.hpp"
#include "trace/crc32.hpp"
#include "trace/replay.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"
#include "trace/varint.hpp"
#include "util/rng.hpp"
#include "workloads/scenarios/scenarios.hpp"
#include "workloads/traced_programs.hpp"

namespace paramount::trace {
namespace {

std::string unique_path(const std::string& tag) {
  static std::atomic<int> counter{0};
  return "/tmp/pm_trace_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + "_" + tag + ".pmt";
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<std::uint8_t> bytes;
  if (f != nullptr) {
    std::uint8_t buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      bytes.insert(bytes.end(), buf, buf + n);
    }
    std::fclose(f);
  }
  return bytes;
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  if (!b.empty()) ASSERT_EQ(std::fwrite(b.data(), 1, b.size(), f), b.size());
  std::fclose(f);
}

// Temp file that cleans up after itself.
class TempTrace {
 public:
  explicit TempTrace(const std::string& tag) : path_(unique_path(tag)) {}
  ~TempTrace() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<TraceEvent> scenario_events(const std::string& name,
                                        const ScenarioParams& params) {
  std::unique_ptr<ScenarioStream> scenario = make_scenario(name, params);
  EXPECT_NE(scenario, nullptr) << name;
  std::vector<TraceEvent> events;
  TraceEvent event;
  while (scenario != nullptr && scenario->next(&event)) {
    events.push_back(event);
  }
  return events;
}

void write_trace(const std::string& path, std::size_t num_threads,
                 const std::vector<TraceEvent>& events,
                 std::uint32_t events_per_chunk = 4096) {
  TraceWriter writer;
  TraceWriter::Options options;
  options.events_per_chunk = events_per_chunk;
  TraceError error;
  ASSERT_TRUE(writer.open(path, num_threads, options, &error))
      << error.to_string();
  for (const TraceEvent& event : events) writer.append(event);
  ASSERT_TRUE(writer.finish(&error)) << error.to_string();
}

// Ground truth: enumerate the events straight from memory, no file involved.
std::uint64_t direct_states(std::size_t num_threads,
                            const std::vector<TraceEvent>& events) {
  PosetBuilder builder(num_threads);
  for (const TraceEvent& event : events) {
    builder.add_event_with_clock(event.tid, event.kind, event.object,
                                 event.clock);
  }
  const Poset poset = std::move(builder).build();
  ParamountOptions options;
  options.num_workers = 2;
  return enumerate_paramount(poset, options, [](const Frontier&) {}).states;
}

// Scans the whole trace; returns the terminal status and count via *error.
TraceCursor::Status scan_all(const TraceReader& reader, std::uint64_t* count,
                             TraceError* error) {
  TraceCursor cursor = reader.cursor();
  TraceEvent event;
  *count = 0;
  for (;;) {
    const TraceCursor::Status status = cursor.next(&event, error);
    if (status != TraceCursor::Status::kOk) return status;
    ++*count;
  }
}

// ---- fidelity ----

class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, AllEventsIdentical) {
  ScenarioParams params;
  params.num_threads = 5;
  params.num_events = 1000;
  params.seed = 7;
  const std::vector<TraceEvent> original =
      scenario_events(GetParam(), params);
  ASSERT_EQ(original.size(), params.num_events);

  TempTrace file(GetParam());
  // Small chunks: the round-trip must survive many absolute/delta resets.
  write_trace(file.path(), params.num_threads, original, 128);

  TraceReader reader;
  TraceError error;
  ASSERT_TRUE(reader.open(file.path(), &error)) << error.to_string();
  EXPECT_EQ(reader.num_threads(), params.num_threads);
  EXPECT_EQ(reader.total_events(), original.size());
  EXPECT_GT(reader.num_chunks(), 1u);

  TraceCursor cursor = reader.cursor();
  TraceEvent event;
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(cursor.next(&event, &error), TraceCursor::Status::kOk)
        << error.to_string();
    EXPECT_EQ(event.tid, original[i].tid) << "event " << i;
    EXPECT_EQ(event.kind, original[i].kind) << "event " << i;
    EXPECT_EQ(event.object, original[i].object) << "event " << i;
    EXPECT_EQ(event.clock, original[i].clock) << "event " << i;
    EXPECT_EQ(event.accesses, original[i].accesses) << "event " << i;
  }
  EXPECT_EQ(cursor.next(&event, &error), TraceCursor::Status::kEnd);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, RoundTrip,
                         ::testing::Values("lock-convoy", "barrier-phase",
                                           "fanin-queue", "fork-join",
                                           "hot-var"));

TEST(TraceSeek, FooterIndexMatchesSequentialScan) {
  ScenarioParams params;
  params.num_threads = 4;
  params.num_events = 1000;
  params.seed = 3;
  const std::vector<TraceEvent> original =
      scenario_events("lock-convoy", params);
  TempTrace file("seek");
  write_trace(file.path(), params.num_threads, original, 64);

  TraceReader reader;
  TraceError error;
  ASSERT_TRUE(reader.open(file.path(), &error)) << error.to_string();
  ASSERT_GT(reader.num_chunks(), 4u);

  for (std::size_t c = 0; c <= reader.num_chunks(); ++c) {
    TraceCursor cursor = reader.cursor_at_chunk(c);
    const std::uint64_t first =
        c < reader.num_chunks() ? reader.chunk(c).first_event
                                : reader.total_events();
    EXPECT_EQ(cursor.next_sequence(), first);
    TraceEvent event;
    for (std::uint64_t i = first; i < original.size(); ++i) {
      ASSERT_EQ(cursor.next(&event, &error), TraceCursor::Status::kOk)
          << "chunk " << c << ": " << error.to_string();
      ASSERT_EQ(event.clock, original[i].clock)
          << "chunk " << c << ", event " << i;
    }
    EXPECT_EQ(cursor.next(&event, &error), TraceCursor::Status::kEnd);
  }
}

// ---- robustness ----

TEST(TraceHostile, EveryTruncationPointRejected) {
  ScenarioParams params;
  params.num_threads = 3;
  params.num_events = 200;
  params.seed = 11;
  TempTrace full("trunc_src");
  write_trace(full.path(), params.num_threads,
              scenario_events("hot-var", params), 64);
  const std::vector<std::uint8_t> bytes = read_file(full.path());
  ASSERT_GT(bytes.size(), 64u);

  TempTrace cut("trunc");
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    write_file(cut.path(),
               std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + len));
    TraceReader reader;
    TraceError error;
    if (!reader.open(cut.path(), &error)) {
      EXPECT_NE(error.message, "") << "len " << len;
      continue;
    }
    // Open can only succeed if the trailer survived, which a strict prefix
    // never preserves.
    ADD_FAILURE() << "truncated to " << len << " of " << bytes.size()
                  << " bytes but open() accepted it";
  }
}

// Builds format-valid framing (header, one chunk, footer index, trailer)
// around an arbitrary — possibly malformed — chunk payload, so each test
// below exercises exactly one decoder check.
class FileBuilder {
 public:
  explicit FileBuilder(std::uint32_t num_threads)
      : num_threads_(num_threads) {}

  std::vector<std::uint8_t> build(const std::vector<std::uint8_t>& payload,
                                  std::uint32_t event_count) const {
    std::vector<std::uint8_t> out;
    put_u64(out, kFileMagic);
    put_u32(out, kFormatVersion);
    put_u32(out, num_threads_);
    put_u64(out, 0);  // reserved flags

    const std::uint64_t chunk_offset = out.size();
    put_u32(out, kChunkMagic);
    put_u32(out, static_cast<std::uint32_t>(payload.size()));
    put_u32(out, event_count);
    put_u32(out, crc32(payload.data(), payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());

    std::vector<std::uint8_t> index;
    put_varint(index, chunk_offset);
    put_varint(index, 0);  // first_event
    put_varint(index, event_count);
    for (std::uint32_t t = 0; t < num_threads_; ++t) put_varint(index, 0);

    const std::uint64_t index_offset = out.size();
    out.insert(out.end(), index.begin(), index.end());
    put_u64(out, event_count);  // total_events
    put_u32(out, 1);            // num_chunks
    put_u32(out, crc32(index.data(), index.size()));
    put_u64(out, index_offset);
    put_u64(out, index.size());
    put_u64(out, kFooterMagic);
    return out;
  }

 private:
  static void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xFF);
  }
  static void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xFF);
  }

  std::uint32_t num_threads_;
};

// One event record; `comps` are raw (gap, value) pairs exactly as encoded.
void put_record(std::vector<std::uint8_t>& p, std::uint32_t tid,
                std::uint8_t kind, std::uint8_t flags, std::uint32_t object,
                const std::vector<std::pair<std::uint64_t, std::uint64_t>>&
                    comps) {
  put_varint(p, tid);
  p.push_back(kind);
  p.push_back(flags);
  put_varint(p, object);
  put_varint(p, comps.size());
  for (const auto& [gap, value] : comps) {
    put_varint(p, gap);
    put_varint(p, value);
  }
}

// Writes `bytes` to a temp file and asserts both the open-or-scan failure
// and the exact error code.
void expect_rejected(const std::vector<std::uint8_t>& bytes,
                     TraceErrorCode code, const std::string& tag) {
  TempTrace file(tag);
  write_file(file.path(), bytes);
  TraceReader reader;
  TraceError error;
  if (!reader.open(file.path(), &error)) {
    EXPECT_EQ(error.code, code) << tag << ": " << error.to_string();
    return;
  }
  std::uint64_t count = 0;
  const TraceCursor::Status status = scan_all(reader, &count, &error);
  ASSERT_EQ(status, TraceCursor::Status::kError)
      << tag << " decoded cleanly (" << count << " events)";
  EXPECT_EQ(error.code, code) << tag << ": " << error.to_string();
}

std::vector<std::uint8_t> valid_two_thread_file() {
  // tid1 publishes {0,1}, then tid0 joins it with {1,1}.
  std::vector<std::uint8_t> payload;
  put_record(payload, 1, 0, kAbsoluteClock, 0, {{1, 1}});
  put_record(payload, 0, 0, kAbsoluteClock, 0, {{0, 1}, {0, 1}});
  return FileBuilder(2).build(payload, 2);
}

TEST(TraceHostile, HandAssembledBaselineDecodes) {
  // Sanity-check the builder itself: the baseline must decode cleanly, so
  // every expect_rejected below fails on its injected defect, not on the
  // framing.
  TempTrace file("baseline");
  write_file(file.path(), valid_two_thread_file());
  TraceReader reader;
  TraceError error;
  ASSERT_TRUE(reader.open(file.path(), &error)) << error.to_string();
  std::uint64_t count = 0;
  EXPECT_EQ(scan_all(reader, &count, &error), TraceCursor::Status::kEnd)
      << error.to_string();
  EXPECT_EQ(count, 2u);
}

TEST(TraceHostile, CorruptedFields) {
  const std::vector<std::uint8_t> good = valid_two_thread_file();

  auto mutate = [&](std::size_t offset, std::uint8_t value) {
    std::vector<std::uint8_t> bytes = good;
    bytes[offset] = value;
    return bytes;
  };

  expect_rejected(mutate(0, 'X'), TraceErrorCode::kBadMagic, "file_magic");
  expect_rejected(mutate(8, 99), TraceErrorCode::kBadVersion, "version");
  // num_threads = 0 (u32 at offset 12).
  {
    std::vector<std::uint8_t> bytes = good;
    for (int i = 0; i < 4; ++i) bytes[12 + i] = 0;
    expect_rejected(bytes, TraceErrorCode::kBadHeader, "zero_threads");
  }
  expect_rejected(mutate(16, 1), TraceErrorCode::kBadHeader,
                  "reserved_flags");
  // Chunk magic (offset 24) and a payload byte (CRC-covered).
  expect_rejected(mutate(24, 'X'), TraceErrorCode::kBadMagic, "chunk_magic");
  expect_rejected(
      mutate(kFileHeaderBytes + kChunkHeaderBytes + 2, 0x7F),
      TraceErrorCode::kBadCrc, "payload_byte");
  expect_rejected(mutate(good.size() - 1, 'X'), TraceErrorCode::kBadFooter,
                  "footer_magic");
  // A byte inside the footer index breaks the index CRC.
  expect_rejected(mutate(good.size() - kFileTrailerBytes - 1, 0x7F),
                  TraceErrorCode::kBadCrc, "index_byte");
}

TEST(TraceHostile, MalformedRecords) {
  struct Case {
    const char* tag;
    TraceErrorCode code;
    std::vector<std::uint8_t> payload;
    std::uint32_t events;
  };
  std::vector<Case> cases;

  {
    Case c{"tid_out_of_range", TraceErrorCode::kBadThread, {}, 1};
    put_record(c.payload, 5, 0, kAbsoluteClock, 0, {{0, 1}});
    cases.push_back(std::move(c));
  }
  {
    // Valid {0,1}/{1,1} prelude, then tid0 drops the component it already
    // observed from tid1: {2,0} regresses against {1,1}.
    Case c{"clock_regression", TraceErrorCode::kClockRegression, {}, 3};
    put_record(c.payload, 1, 0, kAbsoluteClock, 0, {{1, 1}});
    put_record(c.payload, 0, 0, kAbsoluteClock, 0, {{0, 1}, {0, 1}});
    put_record(c.payload, 0, 0, kAbsoluteClock, 0, {{0, 2}});
    cases.push_back(std::move(c));
  }
  {
    // tid0's first event claims to have seen tid1's first — which is not
    // published yet.
    Case c{"unpublished_reference", TraceErrorCode::kBadEvent, {}, 1};
    put_record(c.payload, 0, 0, kAbsoluteClock, 0, {{0, 1}, {0, 1}});
    cases.push_back(std::move(c));
  }
  {
    Case c{"zero_delta_increment", TraceErrorCode::kBadEvent, {}, 2};
    put_record(c.payload, 0, 0, kAbsoluteClock, 0, {{0, 1}});
    put_record(c.payload, 0, 0, 0, 0, {{0, 0}});
    cases.push_back(std::move(c));
  }
  {
    // A delta record with no in-chunk absolute base for its thread.
    Case c{"delta_without_base", TraceErrorCode::kBadEvent, {}, 1};
    put_record(c.payload, 0, 0, 0, 0, {{0, 1}});
    cases.push_back(std::move(c));
  }
  {
    Case c{"unknown_record_flags", TraceErrorCode::kBadEvent, {}, 1};
    put_record(c.payload, 0, 0, 0x80 | kAbsoluteClock, 0, {{0, 1}});
    cases.push_back(std::move(c));
  }
  {
    Case c{"kind_out_of_range", TraceErrorCode::kBadEvent, {}, 1};
    put_record(c.payload, 0, 200, kAbsoluteClock, 0, {{0, 1}});
    cases.push_back(std::move(c));
  }
  {
    Case c{"accesses_on_internal_event", TraceErrorCode::kBadEvent, {}, 1};
    put_record(c.payload, 0, 0, kAbsoluteClock | kHasAccesses, 0, {{0, 1}});
    put_varint(c.payload, 1);  // one access
    put_varint(c.payload, 0);
    c.payload.push_back(kAccessIsWrite);
    cases.push_back(std::move(c));
  }
  {
    // Component index beyond the clock width.
    Case c{"component_out_of_range", TraceErrorCode::kBadEvent, {}, 1};
    put_record(c.payload, 0, 0, kAbsoluteClock, 0, {{7, 1}});
    cases.push_back(std::move(c));
  }
  {
    // More components than threads.
    Case c{"too_many_components", TraceErrorCode::kBadEvent, {}, 1};
    put_record(c.payload, 0, 0, kAbsoluteClock, 0,
               {{0, 1}, {0, 1}, {0, 1}});
    cases.push_back(std::move(c));
  }
  {
    Case c{"trailing_chunk_bytes", TraceErrorCode::kBadChunk, {}, 1};
    put_record(c.payload, 0, 0, kAbsoluteClock, 0, {{0, 1}});
    c.payload.push_back(0x00);
    cases.push_back(std::move(c));
  }
  {
    // Record cut off mid-varint at the end of the payload.
    Case c{"record_cut_mid_varint", TraceErrorCode::kBadEvent, {}, 1};
    c.payload.push_back(0x80);
    cases.push_back(std::move(c));
  }

  for (const Case& c : cases) {
    expect_rejected(FileBuilder(2).build(c.payload, c.events), c.code, c.tag);
  }
}

TEST(TraceHostile, MutationFuzzNeverAborts) {
  ScenarioParams params;
  params.num_threads = 4;
  params.num_events = 300;
  params.seed = 13;
  TempTrace src("fuzz_src");
  write_trace(src.path(), params.num_threads,
              scenario_events("hot-var", params), 64);
  const std::vector<std::uint8_t> good = read_file(src.path());

  Rng rng(99);
  TempTrace mutated("fuzz");
  for (int iter = 0; iter < 400; ++iter) {
    std::vector<std::uint8_t> bytes = good;
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int i = 0; i < flips; ++i) {
      const std::size_t at = rng.next_below(bytes.size());
      bytes[at] = static_cast<std::uint8_t>(rng.next_below(256));
    }
    write_file(mutated.path(), bytes);
    TraceReader reader;
    TraceError error;
    if (!reader.open(mutated.path(), &error)) continue;
    // The mutation may have missed every live byte (or restored one);
    // success is fine — the decoder just must not trip the sanitizer.
    std::uint64_t count = 0;
    scan_all(reader, &count, &error);
  }
}

TEST(TraceHostile, GarbageFilesNeverAbort) {
  Rng rng(7);
  TempTrace garbage("garbage");
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<std::uint8_t> bytes(rng.next_below(300));
    for (std::uint8_t& b : bytes) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    write_file(garbage.path(), bytes);
    TraceReader reader;
    TraceError error;
    EXPECT_FALSE(reader.open(garbage.path(), &error)) << "iter " << iter;
  }
}

TEST(TraceHostile, MissingFileIsIoError) {
  TraceReader reader;
  TraceError error;
  EXPECT_FALSE(reader.open("/nonexistent/definitely_missing.pmt", &error));
  EXPECT_EQ(error.code, TraceErrorCode::kIoError);
}

// ---- replay oracle ----

// Streams a trace into an in-process paramountd exactly like
// `paramount-client --trace-file` and returns the Goodbye state count.
std::uint64_t service_states(const TraceReader& reader) {
  using namespace paramount::service;
  ParamountServer::Options server_options;
  server_options.socket_path = unique_path("svc") + ".sock";
  ParamountServer server(std::move(server_options));
  std::string start_error;
  EXPECT_TRUE(server.start(&start_error)) << start_error;

  std::string error;
  FrameChannel channel(connect_unix(server.socket_path(), &error));
  EXPECT_GE(channel.fd(), 0) << error;

  auto read_reply = [&](Op op) {
    std::vector<std::uint8_t> payload;
    EXPECT_EQ(channel.read_frame(&payload), ReadStatus::kFrame);
    DecodedFrame frame;
    const auto err = decode_frame(payload, &frame);
    EXPECT_FALSE(err.has_value()) << (err ? err->message : "");
    EXPECT_EQ(frame.op, op) << to_string(frame.op);
    return frame;
  };

  HelloBody hello;
  hello.num_threads = static_cast<std::uint32_t>(reader.num_threads());
  EXPECT_TRUE(channel.write_frame(encode_hello(hello)));
  read_reply(Op::kHelloAck);

  std::vector<VectorClock> prev(reader.num_threads(),
                                VectorClock(reader.num_threads()));
  TraceCursor cursor = reader.cursor();
  TraceEvent event;
  TraceError trace_error;
  for (;;) {
    const TraceCursor::Status status = cursor.next(&event, &trace_error);
    EXPECT_NE(status, TraceCursor::Status::kError) << trace_error.to_string();
    if (status != TraceCursor::Status::kOk) break;
    EventBody body;
    body.tid = event.tid;
    body.kind = event.kind;
    body.object = event.object;
    for (std::size_t j = 0; j < event.clock.size(); ++j) {
      if (event.clock[j] != prev[event.tid][j]) {
        body.delta.push_back({static_cast<std::uint32_t>(j), event.clock[j]});
      }
    }
    prev[event.tid] = event.clock;
    for (const TraceAccess& a : event.accesses) {
      body.accesses.push_back(AccessRecord{a.var, a.is_write, a.is_init});
    }
    EXPECT_TRUE(channel.write_frame(encode_event(body)));
  }
  EXPECT_TRUE(channel.write_frame(encode_shutdown()));
  const DecodedFrame goodbye = read_reply(Op::kGoodbye);
  EXPECT_EQ(goodbye.counts.events, reader.total_events());
  return goodbye.counts.states;
}

class ReplayOracle : public ::testing::TestWithParam<const char*> {};

TEST_P(ReplayOracle, AllModesMatchDirectEnumeration) {
  ScenarioParams params;
  params.num_threads = 4;
  params.num_events = 800;
  params.seed = 42;
  const std::vector<TraceEvent> events =
      scenario_events(GetParam(), params);
  const std::uint64_t expected = direct_states(params.num_threads, events);

  TempTrace file(GetParam());
  write_trace(file.path(), params.num_threads, events, 256);
  TraceReader reader;
  TraceError error;
  ASSERT_TRUE(reader.open(file.path(), &error)) << error.to_string();

  ParamountOptions options;
  options.num_workers = 2;
  std::uint64_t states = 0;
  ASSERT_TRUE(replay_count_offline(reader, options, &states, &error))
      << error.to_string();
  EXPECT_EQ(states, expected) << "offline";
  ASSERT_TRUE(replay_count_streaming(reader, options, &states, &error))
      << error.to_string();
  EXPECT_EQ(states, expected) << "streaming";

  OnlineParamount::Options online;
  online.async_workers = 2;
  ASSERT_TRUE(replay_count_online(reader, online, &states, &error))
      << error.to_string();
  EXPECT_EQ(states, expected) << "online";

  EXPECT_EQ(service_states(reader), expected) << "service";
}

INSTANTIATE_TEST_SUITE_P(Scenarios, ReplayOracle,
                         ::testing::Values("lock-convoy", "barrier-phase",
                                           "fanin-queue", "fork-join",
                                           "hot-var"));

TEST(TraceFileSinkTest, RecordedProgramMatchesInMemoryRecording) {
  // Trace the same execution into RecordingSink (in-memory poset) and
  // TraceFileSink (.pmt) simultaneously; both must enumerate to the same
  // count.
  const TracedProgramSpec& spec = traced_program("banking");
  TempTrace file("banking");

  RecordingSink recording(spec.num_threads);
  TraceFileSink file_sink(file.path(), spec.num_threads);
  ASSERT_TRUE(file_sink.ok()) << file_sink.error().to_string();
  TeeSink tee({&recording, &file_sink});

  TraceRuntime::Options options;
  options.num_threads = spec.num_threads;
  options.record_sync_events = true;
  TraceRuntime runtime(options, tee);
  file_sink.set_access_table(&runtime.access_table());
  spec.run(runtime, /*scale=*/1);
  runtime.finish();
  ASSERT_TRUE(file_sink.finish()) << file_sink.error().to_string();

  const Poset poset = std::move(recording).build();
  ParamountOptions enum_options;
  enum_options.num_workers = 2;
  const std::uint64_t expected =
      enumerate_paramount(poset, enum_options, [](const Frontier&) {}).states;

  TraceReader reader;
  TraceError error;
  ASSERT_TRUE(reader.open(file.path(), &error)) << error.to_string();
  EXPECT_EQ(reader.total_events(), poset.total_events());
  std::uint64_t states = 0;
  ASSERT_TRUE(replay_count_offline(reader, enum_options, &states, &error))
      << error.to_string();
  EXPECT_EQ(states, expected);
}

}  // namespace
}  // namespace paramount::trace
