#include "workloads/random_poset.hpp"

#include <gtest/gtest.h>

#include "poset/lattice.hpp"
#include "test_helpers.hpp"

namespace paramount {
namespace {

TEST(RandomPoset, HasRequestedShape) {
  RandomPosetParams params;
  params.num_processes = 6;
  params.num_events = 120;
  params.seed = 2;
  const Poset poset = make_random_poset(params);
  EXPECT_EQ(poset.num_threads(), 6u);
  EXPECT_EQ(poset.total_events(), 120u);
  poset.check_invariants();
}

TEST(RandomPoset, DeterministicPerSeed) {
  RandomPosetParams params;
  params.num_events = 80;
  params.seed = 9;
  const Poset a = make_random_poset(params);
  const Poset b = make_random_poset(params);
  ASSERT_EQ(a.total_events(), b.total_events());
  for (ThreadId t = 0; t < a.num_threads(); ++t) {
    ASSERT_EQ(a.num_events(t), b.num_events(t));
    for (EventIndex i = 1; i <= a.num_events(t); ++i) {
      EXPECT_EQ(a.vc(t, i), b.vc(t, i));
    }
  }
}

TEST(RandomPoset, SeedsProduceDifferentPosets) {
  RandomPosetParams pa, pb;
  pa.seed = 1;
  pb.seed = 2;
  const Poset a = make_random_poset(pa);
  const Poset b = make_random_poset(pb);
  bool different = a.num_events(0) != b.num_events(0);
  for (ThreadId t = 0; !different && t < a.num_threads(); ++t) {
    if (a.num_events(t) != b.num_events(t)) different = true;
  }
  EXPECT_TRUE(different);
}

TEST(RandomPoset, MessageDensityShrinksTheLattice) {
  RandomPosetParams sparse, dense;
  sparse.num_processes = dense.num_processes = 5;
  sparse.num_events = dense.num_events = 40;
  sparse.seed = dense.seed = 4;
  sparse.message_probability = 0.05;
  dense.message_probability = 0.9;
  const auto sparse_count =
      count_ideals(make_random_poset(sparse)).value();
  const auto dense_count = count_ideals(make_random_poset(dense)).value();
  EXPECT_GT(sparse_count, dense_count);
}

TEST(RandomPoset, MessagesCreateCrossEdges) {
  RandomPosetParams params;
  params.num_processes = 4;
  params.num_events = 100;
  params.message_probability = 0.6;
  params.seed = 5;
  const Poset poset = make_random_poset(params);
  bool found_cross_edge = false;
  for (ThreadId t = 0; t < poset.num_threads() && !found_cross_edge; ++t) {
    for (EventIndex i = 1; i <= poset.num_events(t); ++i) {
      const VectorClock& vc = poset.vc(t, i);
      for (ThreadId j = 0; j < poset.num_threads(); ++j) {
        if (j != t && vc[j] > 0) {
          found_cross_edge = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(found_cross_edge);
}

TEST(RandomPoset, SingleProcessIsAChain) {
  RandomPosetParams params;
  params.num_processes = 1;
  params.num_events = 25;
  const Poset poset = make_random_poset(params);
  EXPECT_EQ(count_ideals(poset).value(), 26u);
}

}  // namespace
}  // namespace paramount
