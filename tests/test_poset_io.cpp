#include "poset/poset_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "poset/lattice.hpp"
#include "test_helpers.hpp"

namespace paramount {
namespace {

using testing::make_figure4_poset;
using testing::make_random;

void expect_posets_equal(const Poset& a, const Poset& b) {
  ASSERT_EQ(a.num_threads(), b.num_threads());
  for (ThreadId t = 0; t < a.num_threads(); ++t) {
    ASSERT_EQ(a.num_events(t), b.num_events(t));
    for (EventIndex i = 1; i <= a.num_events(t); ++i) {
      EXPECT_EQ(a.event(t, i).kind, b.event(t, i).kind);
      EXPECT_EQ(a.event(t, i).object, b.event(t, i).object);
      EXPECT_EQ(a.vc(t, i), b.vc(t, i));
    }
  }
}

TEST(PosetIo, RoundTripFigure4) {
  const Poset original = make_figure4_poset();
  const Poset reloaded = poset_from_string(poset_to_string(original));
  expect_posets_equal(original, reloaded);
}

TEST(PosetIo, RoundTripRandomPosets) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Poset original = make_random(5, 50, 0.5, seed);
    const Poset reloaded = poset_from_string(poset_to_string(original));
    expect_posets_equal(original, reloaded);
    EXPECT_EQ(count_ideals(original), count_ideals(reloaded));
  }
}

TEST(PosetIo, RoundTripEmptyPoset) {
  PosetBuilder builder(3);
  const Poset original = std::move(builder).build();
  const Poset reloaded = poset_from_string(poset_to_string(original));
  EXPECT_EQ(reloaded.num_threads(), 3u);
  EXPECT_EQ(reloaded.total_events(), 0u);
}

TEST(PosetIo, FormatIsStable) {
  const std::string text = poset_to_string(make_figure4_poset());
  EXPECT_EQ(text,
            "poset v1 2\n"
            "event 0 0 0 1 0\n"
            "event 1 0 0 0 1\n"
            "event 0 0 0 2 1\n"
            "event 1 0 0 1 2\n");
}

TEST(PosetIo, PreservesKindsAndObjects) {
  PosetBuilder builder(2);
  builder.add_event(0, OpKind::kAcquire, {}, 42);
  builder.add_event(1, OpKind::kCollection, {}, 7);
  const Poset reloaded =
      poset_from_string(poset_to_string(std::move(builder).build()));
  EXPECT_EQ(reloaded.event(0, 1).kind, OpKind::kAcquire);
  EXPECT_EQ(reloaded.event(0, 1).object, 42u);
  EXPECT_EQ(reloaded.event(1, 1).kind, OpKind::kCollection);
  EXPECT_EQ(reloaded.event(1, 1).object, 7u);
}

TEST(PosetIo, RejectsGarbage) {
  EXPECT_DEATH(poset_from_string("not a poset"), "not a poset v1 file");
}

TEST(PosetIo, RejectsBadThreadId) {
  EXPECT_DEATH(poset_from_string("poset v1 2\nevent 5 0 0 1 0\n"),
               "out of range");
}

TEST(PosetIo, RejectsTruncatedClock) {
  EXPECT_DEATH(poset_from_string("poset v1 2\nevent 0 0 0 1\n"),
               "truncated");
}

TEST(PosetIo, RejectsInconsistentClocks) {
  // Clock claims a dependency on an event that does not exist yet.
  EXPECT_DEATH(poset_from_string("poset v1 2\nevent 0 0 0 1 3\n"), "");
}

TEST(PosetIo, SaveAndLoadFile) {
  const std::string path = ::testing::TempDir() + "/paramount_poset_io.txt";
  const Poset original = make_random(4, 30, 0.5, 11);
  save_poset(path, original);
  const Poset reloaded = load_poset(path);
  expect_posets_equal(original, reloaded);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace paramount
