// FrameChannel transport tests: the S3 partial-I/O contract and the S2
// listen_unix probe.
//
// The split-point suites drive a socketpair byte by byte: a non-blocking
// reader must return kWouldBlock at EVERY prefix of a frame (mid-header,
// at the header/body seam, mid-body) and resume to the identical payload
// once the rest arrives; a non-blocking writer whose kernel buffer is full
// must buffer the tail and flush() it out across arbitrary resume offsets
// with no byte reordered or dropped. The listen_unix suite pins the
// socket-stealing fix: a stale socket file is reclaimed, a live daemon's
// socket gets a typed kLiveListener refusal and is left untouched.
//
// Raw ::read/::write/socketpair are used deliberately here to control
// exactly how many bytes cross the wire per step — that is the point of
// the suite. Frame-level I/O still goes through FrameChannel.
#include "service/channel.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "service/frame.hpp"

namespace paramount::service {
namespace {

// A connected socketpair wrapped as two FrameChannels.
struct Pair {
  Pair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = std::make_unique<FrameChannel>(UniqueFd(fds[0]));
    b = std::make_unique<FrameChannel>(UniqueFd(fds[1]));
  }
  std::unique_ptr<FrameChannel> a;
  std::unique_ptr<FrameChannel> b;
};

// The exact v2 wire image of one frame: 8-byte LE header (length, stream)
// then the payload.
std::vector<std::uint8_t> wire_frame(const std::vector<std::uint8_t>& payload,
                                     std::uint32_t stream_id) {
  std::vector<std::uint8_t> out;
  const auto le32 = [&out](std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
  };
  le32(static_cast<std::uint32_t>(payload.size()));
  le32(stream_id);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t wrote = ::write(fd, data, n);
    ASSERT_GT(wrote, 0);
    data += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
}

std::vector<std::uint8_t> test_payload() {
  // Long enough to have interior body split points, short enough to loop
  // over every prefix.
  return {0x42, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
}

// ---- S3: every short-read split point ----

// For every proper prefix of (header + body), a non-blocking reader fed
// only that prefix must report kWouldBlock, then complete to the identical
// frame when the remainder arrives — and the channel must be clean for the
// next frame.
TEST(FrameChannelSplits, ReadResumesAtEveryPrefix) {
  const std::vector<std::uint8_t> payload = test_payload();
  const std::vector<std::uint8_t> wire = wire_frame(payload, 7);
  for (std::size_t split = 0; split < wire.size(); ++split) {
    Pair pair;
    ASSERT_TRUE(pair.b->set_nonblocking(true));
    if (split > 0) write_all(pair.a->fd(), wire.data(), split);
    std::vector<std::uint8_t> got;
    std::uint32_t stream = 0;
    ASSERT_EQ(pair.b->read_frame(&got, &stream), ReadStatus::kWouldBlock)
        << "split at byte " << split;
    write_all(pair.a->fd(), wire.data() + split, wire.size() - split);
    ASSERT_EQ(pair.b->read_frame(&got, &stream), ReadStatus::kFrame)
        << "split at byte " << split;
    EXPECT_EQ(got, payload) << "split at byte " << split;
    EXPECT_EQ(stream, 7u) << "split at byte " << split;
    // A second frame must decode cleanly: no stale partial state.
    const std::vector<std::uint8_t> wire2 = wire_frame({0x01}, 0);
    write_all(pair.a->fd(), wire2.data(), wire2.size());
    ASSERT_EQ(pair.b->read_frame(&got, &stream), ReadStatus::kFrame);
    EXPECT_EQ(got.size(), 1u);
    EXPECT_EQ(stream, 0u);
  }
}

// Byte-at-a-time delivery: kWouldBlock after every byte but the last.
TEST(FrameChannelSplits, ReadSurvivesByteByByteDelivery) {
  const std::vector<std::uint8_t> payload = test_payload();
  const std::vector<std::uint8_t> wire = wire_frame(payload, 3);
  Pair pair;
  ASSERT_TRUE(pair.b->set_nonblocking(true));
  std::vector<std::uint8_t> got;
  std::uint32_t stream = 0;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    write_all(pair.a->fd(), &wire[i], 1);
    ASSERT_EQ(pair.b->read_frame(&got, &stream), ReadStatus::kWouldBlock)
        << "after byte " << i;
  }
  write_all(pair.a->fd(), &wire[wire.size() - 1], 1);
  ASSERT_EQ(pair.b->read_frame(&got, &stream), ReadStatus::kFrame);
  EXPECT_EQ(got, payload);
  EXPECT_EQ(stream, 3u);
}

TEST(FrameChannelSplits, EmptySocketWouldBlockRepeatedly) {
  Pair pair;
  ASSERT_TRUE(pair.b->set_nonblocking(true));
  std::vector<std::uint8_t> got;
  EXPECT_EQ(pair.b->read_frame(&got), ReadStatus::kWouldBlock);
  EXPECT_EQ(pair.b->read_frame(&got), ReadStatus::kWouldBlock);
}

// EOF exactly at a frame boundary is an orderly close; EOF at any interior
// byte is kTruncated.
TEST(FrameChannelSplits, EofAtBoundaryVersusTruncatedMidFrame) {
  const std::vector<std::uint8_t> wire = wire_frame(test_payload(), 1);
  {
    Pair pair;
    write_all(pair.a->fd(), wire.data(), wire.size());
    pair.a.reset();  // close at the boundary
    std::vector<std::uint8_t> got;
    EXPECT_EQ(pair.b->read_frame(&got), ReadStatus::kFrame);
    EXPECT_EQ(pair.b->read_frame(&got), ReadStatus::kEof);
  }
  for (const std::size_t cut : {std::size_t{1}, std::size_t{4},
                                std::size_t{8}, wire.size() - 1}) {
    Pair pair;
    write_all(pair.a->fd(), wire.data(), cut);
    pair.a.reset();  // die mid-frame
    std::vector<std::uint8_t> got;
    EXPECT_EQ(pair.b->read_frame(&got), ReadStatus::kTruncated)
        << "cut at byte " << cut;
  }
}

TEST(FrameChannelSplits, OversizedHeaderIsRejectedWithoutReadingBody) {
  Pair pair;
  const std::vector<std::uint8_t> header = wire_frame({}, 0);
  std::vector<std::uint8_t> bad(header);
  const std::uint32_t huge = static_cast<std::uint32_t>(kMaxFramePayload) + 1;
  std::memcpy(bad.data(), &huge, sizeof(huge));
  write_all(pair.a->fd(), bad.data(), bad.size());
  std::vector<std::uint8_t> got;
  EXPECT_EQ(pair.b->read_frame(&got), ReadStatus::kOversized);
}

TEST(FrameChannelSplits, StreamIdRoundTripsAndDefaultsToZero) {
  Pair pair;
  const std::vector<std::uint8_t> payload = {0xAB, 0xCD};
  ASSERT_TRUE(pair.a->write_frame(payload, 0xDEADBEEFu));
  ASSERT_TRUE(pair.a->write_frame(payload));
  std::vector<std::uint8_t> got;
  std::uint32_t stream = 0;
  ASSERT_EQ(pair.b->read_frame(&got, &stream), ReadStatus::kFrame);
  EXPECT_EQ(stream, 0xDEADBEEFu);
  EXPECT_EQ(got, payload);
  ASSERT_EQ(pair.b->read_frame(&got, &stream), ReadStatus::kFrame);
  EXPECT_EQ(stream, 0u);
}

// write_frame must put header+payload on the wire as one contiguous image
// in the documented layout (u32 LE length, u32 LE stream, payload).
TEST(FrameChannelSplits, WriteProducesTheDocumentedWireImage) {
  Pair pair;
  const std::vector<std::uint8_t> payload = test_payload();
  ASSERT_TRUE(pair.a->write_frame(payload, 9));
  std::vector<std::uint8_t> raw(8 + payload.size());
  std::size_t got = 0;
  while (got < raw.size()) {
    const ssize_t n = ::read(pair.b->fd(), raw.data() + got,
                             raw.size() - got);
    ASSERT_GT(n, 0);
    got += static_cast<std::size_t>(n);
  }
  EXPECT_EQ(raw, wire_frame(payload, 9));
}

// ---- S3: every short-write split point ----

// Shrink both kernel buffers so a burst of large frames overruns them, then
// drain the reader in deliberately awkward chunk sizes while flushing: the
// buffered tail must resume at arbitrary offsets and every frame must
// arrive bit-exact and in order.
TEST(FrameChannelSplits, BufferedWritesFlushAcrossArbitraryResumeOffsets) {
  Pair pair;
  const int small = 4096;  // kernels clamp to a floor; any small value works
  ASSERT_EQ(::setsockopt(pair.a->fd(), SOL_SOCKET, SO_SNDBUF, &small,
                         sizeof(small)), 0);
  ASSERT_EQ(::setsockopt(pair.b->fd(), SOL_SOCKET, SO_RCVBUF, &small,
                         sizeof(small)), 0);
  ASSERT_TRUE(pair.a->set_nonblocking(true));
  ASSERT_TRUE(pair.b->set_nonblocking(true));

  // Distinct, verifiable payloads big enough to overrun the buffers.
  constexpr int kFrames = 24;
  std::vector<std::vector<std::uint8_t>> sent;
  for (int i = 0; i < kFrames; ++i) {
    std::vector<std::uint8_t> payload(3000 + i * 17);
    for (std::size_t j = 0; j < payload.size(); ++j) {
      payload[j] = static_cast<std::uint8_t>((i * 131 + j) & 0xFF);
    }
    sent.push_back(std::move(payload));
    ASSERT_TRUE(pair.a->write_frame(sent.back(),
                                    static_cast<std::uint32_t>(i)));
  }
  ASSERT_TRUE(pair.a->has_pending_write())
      << "buffers too large to force a short write; grow the payloads";

  // Interleave draining (odd chunk sizes, so flush resumes at many
  // different offsets) with flushing until the backlog is gone.
  std::vector<std::uint8_t> raw;
  std::uint8_t chunk[97];
  std::size_t last_pending = pair.a->pending_write_bytes();
  while (true) {
    const FrameChannel::FlushStatus status = pair.a->flush();
    ASSERT_NE(status, FrameChannel::FlushStatus::kError);
    EXPECT_LE(pair.a->pending_write_bytes(), last_pending)
        << "flush must never grow the backlog";
    last_pending = pair.a->pending_write_bytes();
    if (status == FrameChannel::FlushStatus::kDrained) break;
    const ssize_t n = ::read(pair.b->fd(), chunk, sizeof(chunk));
    if (n > 0) raw.insert(raw.end(), chunk, chunk + n);
  }
  EXPECT_FALSE(pair.a->has_pending_write());

  // Drain whatever is still in the kernel, then decode everything.
  for (;;) {
    const ssize_t n = ::read(pair.b->fd(), chunk, sizeof(chunk));
    if (n <= 0) break;
    raw.insert(raw.end(), chunk, chunk + n);
  }
  std::vector<std::uint8_t> expected;
  for (int i = 0; i < kFrames; ++i) {
    const std::vector<std::uint8_t> image =
        wire_frame(sent[static_cast<std::size_t>(i)],
                   static_cast<std::uint32_t>(i));
    expected.insert(expected.end(), image.begin(), image.end());
  }
  EXPECT_EQ(raw, expected);
}

// write_frame on a peer-closed socket must fail without raising SIGPIPE
// (the test surviving is the assertion).
TEST(FrameChannelSplits, PeerCloseFailsWritesWithoutSigpipe) {
  Pair pair;
  pair.b.reset();
  const std::vector<std::uint8_t> payload = test_payload();
  bool failed = false;
  for (int i = 0; i < 4 && !failed; ++i) {
    failed = !pair.a->write_frame(payload);
  }
  EXPECT_TRUE(failed);
}

// flush() on a peer-closed socket with a backlog reports kError.
TEST(FrameChannelSplits, FlushReportsErrorAfterPeerClose) {
  Pair pair;
  const int small = 4096;
  ASSERT_EQ(::setsockopt(pair.a->fd(), SOL_SOCKET, SO_SNDBUF, &small,
                         sizeof(small)), 0);
  ASSERT_TRUE(pair.a->set_nonblocking(true));
  std::vector<std::uint8_t> payload(1 << 16, 0x5A);
  while (!pair.a->has_pending_write()) {
    ASSERT_TRUE(pair.a->write_frame(payload));
  }
  pair.b.reset();
  EXPECT_EQ(pair.a->flush(), FrameChannel::FlushStatus::kError);
}

// ---- endpoint parsing ----

TEST(EndpointParse, UnixSpecsWithAndWithoutScheme) {
  Endpoint ep;
  std::string error;
  ASSERT_TRUE(parse_endpoint("/tmp/pm.sock", &ep, &error)) << error;
  EXPECT_EQ(ep.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(ep.path, "/tmp/pm.sock");
  ASSERT_TRUE(parse_endpoint("unix:/run/pm.sock", &ep, &error)) << error;
  EXPECT_EQ(ep.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(ep.path, "/run/pm.sock");
}

TEST(EndpointParse, TcpSpecHostPortAndWildcard) {
  Endpoint ep;
  std::string error;
  ASSERT_TRUE(parse_endpoint("tcp:127.0.0.1:9000", &ep, &error)) << error;
  EXPECT_EQ(ep.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(ep.host, "127.0.0.1");
  EXPECT_EQ(ep.port, 9000);
  ASSERT_TRUE(parse_endpoint("tcp::0", &ep, &error)) << error;
  EXPECT_TRUE(ep.host.empty());
  EXPECT_EQ(ep.port, 0);
}

TEST(EndpointParse, RejectsMalformedSpecs) {
  Endpoint ep;
  std::string error;
  EXPECT_FALSE(parse_endpoint("", &ep, &error));
  EXPECT_FALSE(parse_endpoint("tcp:host", &ep, &error));
  EXPECT_FALSE(parse_endpoint("tcp:host:notaport", &ep, &error));
  EXPECT_FALSE(parse_endpoint("tcp:host:70000", &ep, &error));
  EXPECT_FALSE(parse_endpoint("unix:", &ep, &error));
  EXPECT_FALSE(parse_endpoint(std::string("unix:") + std::string(300, 'x'),
                              &ep, &error));
}

// ---- S2: listen_unix stale-file vs live-daemon ----

std::string unique_path(const char* tag) {
  static std::atomic<int> counter{0};
  return "/tmp/pm_chan_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

// A socket file whose listener is gone is stale: rebinding must reclaim it.
TEST(ListenUnix, ReclaimsStaleSocketFile) {
  const std::string path = unique_path("stale");
  std::string error;
  {
    UniqueFd first = listen_unix(path, 4, &error);
    ASSERT_TRUE(first.valid()) << error;
  }  // listener fd closed; the file stays behind — stale
  ListenUnixError why = ListenUnixError::kNone;
  UniqueFd second = listen_unix(path, 4, &error, &why);
  EXPECT_TRUE(second.valid()) << error;
  EXPECT_EQ(why, ListenUnixError::kNone);
  second.reset();
  ::unlink(path.c_str());
}

// A path with a live listener must get the typed refusal — and the live
// listener must keep working afterwards (nothing was unlinked).
TEST(ListenUnix, RefusesToStealALiveListenersSocket) {
  const std::string path = unique_path("live");
  std::string error;
  UniqueFd live = listen_unix(path, 4, &error);
  ASSERT_TRUE(live.valid()) << error;

  ListenUnixError why = ListenUnixError::kNone;
  UniqueFd thief = listen_unix(path, 4, &error, &why);
  EXPECT_FALSE(thief.valid());
  EXPECT_EQ(why, ListenUnixError::kLiveListener);
  EXPECT_NE(error.find("live"), std::string::npos) << error;

  // The probe must not have broken the live daemon: clients still connect.
  UniqueFd client = connect_unix(path, &error);
  EXPECT_TRUE(client.valid()) << error;
  client.reset();
  live.reset();
  ::unlink(path.c_str());
}

TEST(ListenUnix, RejectsBadPaths) {
  std::string error;
  ListenUnixError why = ListenUnixError::kNone;
  EXPECT_FALSE(listen_unix("", 4, &error, &why).valid());
  EXPECT_EQ(why, ListenUnixError::kBadPath);
  EXPECT_FALSE(listen_unix(std::string(300, 'x'), 4, &error, &why).valid());
  EXPECT_EQ(why, ListenUnixError::kBadPath);
}

// ---- TCP helpers ----

TEST(TcpEndpoint, ListenConnectAndExchangeFrames) {
  std::string error;
  UniqueFd listener = listen_tcp("127.0.0.1", 0, 4, &error);
  ASSERT_TRUE(listener.valid()) << error;
  const std::uint16_t port = local_tcp_port(listener.get());
  ASSERT_NE(port, 0);

  UniqueFd client_fd = connect_tcp("127.0.0.1", port, &error);
  ASSERT_TRUE(client_fd.valid()) << error;
  UniqueFd server_fd(::accept(listener.get(), nullptr, nullptr));
  ASSERT_TRUE(server_fd.valid());

  FrameChannel client(std::move(client_fd));
  FrameChannel server(std::move(server_fd));
  const std::vector<std::uint8_t> payload = test_payload();
  ASSERT_TRUE(client.write_frame(payload, 11));
  std::vector<std::uint8_t> got;
  std::uint32_t stream = 0;
  ASSERT_EQ(server.read_frame(&got, &stream), ReadStatus::kFrame);
  EXPECT_EQ(got, payload);
  EXPECT_EQ(stream, 11u);
  ASSERT_TRUE(server.write_frame(payload, 12));
  ASSERT_EQ(client.read_frame(&got, &stream), ReadStatus::kFrame);
  EXPECT_EQ(stream, 12u);
}

TEST(TcpEndpoint, ConnectEndpointDispatchesOnKind) {
  std::string error;
  UniqueFd listener = listen_tcp("127.0.0.1", 0, 4, &error);
  ASSERT_TRUE(listener.valid()) << error;
  Endpoint ep;
  ep.kind = Endpoint::Kind::kTcp;
  ep.host = "127.0.0.1";
  ep.port = local_tcp_port(listener.get());
  UniqueFd fd = connect_endpoint(ep, &error);
  EXPECT_TRUE(fd.valid()) << error;
}

}  // namespace
}  // namespace paramount::service
