// Properties of the interval partition (§3 of the paper): Theorem 1 (Gbnd is
// consistent), Lemma 2 (cover), Lemma 3 (disjointness), and the Figure 5/6
// worked examples.
#include "core/interval.hpp"

#include <gtest/gtest.h>

#include <map>

#include "poset/lattice.hpp"
#include "test_helpers.hpp"

namespace paramount {
namespace {

using testing::key_of;
using testing::make_figure4_poset;
using testing::make_random;
using testing::Key;

// The fixed total order of Figure 5: e1[1] →p e2[1] →p e1[2] →p e2[2].
std::vector<EventId> figure5_order() {
  return {{0, 1}, {1, 1}, {0, 2}, {1, 2}};
}

TEST(Interval, Figure5BoundaryStates) {
  const Poset poset = make_figure4_poset();
  const auto intervals = compute_intervals(poset, figure5_order());
  ASSERT_EQ(intervals.size(), 4u);
  // Gbnd values given in the paper: {1,0}, {1,1}, {2,1}, {2,2}.
  EXPECT_EQ(key_of(intervals[0].gbnd), (Key{1, 0}));
  EXPECT_EQ(key_of(intervals[1].gbnd), (Key{1, 1}));
  EXPECT_EQ(key_of(intervals[2].gbnd), (Key{2, 1}));
  EXPECT_EQ(key_of(intervals[3].gbnd), (Key{2, 2}));
  // Gmin(e) = e.vc.
  EXPECT_EQ(key_of(intervals[0].gmin), (Key{1, 0}));
  EXPECT_EQ(key_of(intervals[1].gmin), (Key{0, 1}));
  EXPECT_EQ(key_of(intervals[2].gmin), (Key{2, 1}));
  EXPECT_EQ(key_of(intervals[3].gmin), (Key{1, 2}));
}

TEST(Interval, RequiresLinearExtension) {
  const Poset poset = make_figure4_poset();
  // e1[2] before e2[1] violates happened-before.
  EXPECT_DEATH(
      compute_intervals(poset, {{0, 1}, {0, 2}, {1, 1}, {1, 2}}),
      "linear extension");
}

TEST(Interval, BoxCells) {
  Interval iv;
  iv.gmin = Frontier{1, 0};
  iv.gbnd = Frontier{2, 2};
  EXPECT_EQ(iv.box_cells(), 2u * 3u);
  iv.gmin = iv.gbnd;
  EXPECT_EQ(iv.box_cells(), 1u);
}

// Theorem 1: every Gbnd(e) is a consistent global state, for every policy.
class IntervalProperties
    : public ::testing::TestWithParam<std::tuple<TopoPolicy, std::uint64_t>> {
};

TEST_P(IntervalProperties, GbndIsConsistent) {
  const auto [policy, seed] = GetParam();
  const Poset poset = make_random(4, 32, 0.4, seed);
  for (const Interval& iv : compute_intervals(poset, policy, seed)) {
    EXPECT_TRUE(poset.is_consistent(iv.gbnd));
    EXPECT_TRUE(poset.is_consistent(iv.gmin));
    EXPECT_TRUE(iv.gmin.leq(iv.gbnd));
  }
}

// Lemmas 2-3: every consistent state lies in exactly one interval (the empty
// state is assigned to the first event by convention).
TEST_P(IntervalProperties, IntervalsPartitionTheLattice) {
  const auto [policy, seed] = GetParam();
  const Poset poset = make_random(4, 28, 0.4, seed);
  const auto intervals = compute_intervals(poset, policy, seed);

  std::map<Key, int> owners;
  for (const Frontier& g : all_ideals(poset)) {
    if (state_rank(g) == 0) continue;  // the empty state: special case
    int owner_count = 0;
    for (const Interval& iv : intervals) {
      if (iv.gmin.leq(g) && g.leq(iv.gbnd)) ++owner_count;
    }
    EXPECT_EQ(owner_count, 1)
        << "state " << g.to_string() << " lies in " << owner_count
        << " intervals";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, IntervalProperties,
    ::testing::Combine(::testing::Values(TopoPolicy::kInterleave,
                                         TopoPolicy::kThreadMajor,
                                         TopoPolicy::kRandom),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u)));

TEST(Interval, LastIntervalEndsAtFullFrontier) {
  const Poset poset = make_random(5, 40, 0.3, 9);
  const auto intervals = compute_intervals(poset, TopoPolicy::kInterleave);
  EXPECT_EQ(key_of(intervals.back().gbnd), key_of(poset.full_frontier()));
}

}  // namespace
}  // namespace paramount
