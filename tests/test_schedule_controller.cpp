// Cooperative schedule controller: determinism per seed, schedule diversity
// across seeds, deadlock freedom over every workload, and exploration-based
// detection (§5.3 — the RichTest-style complement).
#include "runtime/schedule_controller.hpp"

#include <gtest/gtest.h>

#include "poset/poset_io.hpp"
#include "poset/topo_sort.hpp"
#include "workloads/harness.hpp"

namespace paramount {
namespace {

using Policy = ScheduleController::Policy;

TEST(ScheduleController, SameSeedReplaysIdenticalPoset) {
  const TracedProgramSpec& spec = traced_program("banking");
  for (const Policy policy :
       {Policy::kRoundRobin, Policy::kRandom, Policy::kChunked}) {
    const RecordedTrace a =
        record_program_scheduled(spec, 1, false, policy, 42);
    const RecordedTrace b =
        record_program_scheduled(spec, 1, false, policy, 42);
    EXPECT_EQ(poset_to_string(a.poset), poset_to_string(b.poset))
        << "policy " << static_cast<int>(policy) << " not deterministic";
  }
}

TEST(ScheduleController, DifferentSeedsExploreDifferentSchedules) {
  const TracedProgramSpec& spec = traced_program("banking");
  std::set<std::string> distinct;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const RecordedTrace trace =
        record_program_scheduled(spec, 1, false, Policy::kChunked, seed);
    distinct.insert(poset_to_string(trace.poset));
  }
  EXPECT_GE(distinct.size(), 2u);
}

TEST(ScheduleController, RoundRobinIsDeterministicAcrossRuns) {
  const TracedProgramSpec& spec = traced_program("arraylist1");
  const RecordedTrace a =
      record_program_scheduled(spec, 1, true, Policy::kRoundRobin, 0);
  const RecordedTrace b =
      record_program_scheduled(spec, 1, true, Policy::kRoundRobin, 0);
  EXPECT_EQ(poset_to_string(a.poset), poset_to_string(b.poset));
}

// Deadlock freedom: every workload must run to completion under the
// controller (the ctest TIMEOUT property turns a hang into a failure).
class ControlledWorkload : public ::testing::TestWithParam<const char*> {};

TEST_P(ControlledWorkload, RunsToCompletionUnderController) {
  const TracedProgramSpec& spec = traced_program(GetParam());
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    const RecordedTrace trace =
        record_program_scheduled(spec, 1, false, Policy::kChunked, seed);
    trace.poset.check_invariants();
    EXPECT_TRUE(is_linear_extension(trace.poset, trace.order)) << spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, ControlledWorkload,
                         ::testing::Values("banking", "set_faulty",
                                           "set_correct", "arraylist1",
                                           "arraylist2", "sor", "elevator",
                                           "tsp", "raytracer", "hedc",
                                           "moldyn", "montecarlo"));

TEST(ScheduleExploration, FindsExpectedRacesDeterministically) {
  const auto result =
      explore_schedules(traced_program("banking"), 1, 4, Policy::kChunked, 7);
  EXPECT_EQ(result.schedules_run, 4u);
  EXPECT_TRUE(result.racy_fields.count("hot_balance"));
  EXPECT_GT(result.total_states, 0u);
}

TEST(ScheduleExploration, UnionsAcrossSchedules) {
  const auto result = explore_schedules(traced_program("arraylist1"), 1, 4,
                                        Policy::kChunked, 3);
  EXPECT_TRUE(result.racy_fields.count("size"));
  EXPECT_TRUE(result.racy_fields.count("modCount"));
  EXPECT_TRUE(result.racy_fields.count("data"));
  EXPECT_GE(result.distinct_posets, 1u);
}

TEST(ScheduleExploration, RaceFreeProgramsStayClean) {
  // set_correct is included deliberately: controlled exploration once caught
  // a real lock-coupling bug in its remove() that serialized OS schedules
  // had hidden — exactly the §5.3 complementarity this subsystem exists for.
  for (const char* name : {"sor", "arraylist2", "elevator", "set_correct"}) {
    const auto result =
        explore_schedules(traced_program(name), 1, 3, Policy::kRandom, 11);
    EXPECT_TRUE(result.racy_fields.empty())
        << name << " produced a false positive under controlled schedules";
  }
}

}  // namespace
}  // namespace paramount
