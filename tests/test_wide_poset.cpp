// Wide posets (more threads than the 16-slot inline clock buffer): exercises
// the heap-spill path of InlinedVector inside every clock/frontier operation
// and the full enumeration stack on top of it.
#include <gtest/gtest.h>

#include "core/paramount.hpp"
#include "poset/lattice.hpp"
#include "test_helpers.hpp"

namespace paramount {
namespace {

using testing::all_distinct;
using testing::as_set;
using testing::collect_all;
using testing::make_antichain;
using testing::make_random;

// Staircase poset: `threads` threads with `steps` events each, where the
// k-th event of thread t depends on the k-th event of thread t-1. Consistent
// frontiers are exactly the non-increasing sequences g_0 ≥ g_1 ≥ … with
// values in [0, steps], so i(P) = C(threads + steps, steps) — a closed form
// that keeps wide posets tractable.
Poset make_staircase(std::size_t threads, EventIndex steps) {
  PosetBuilder builder(threads);
  std::vector<EventId> previous_thread(steps);
  for (ThreadId t = 0; t < threads; ++t) {
    std::vector<EventId> current(steps);
    for (EventIndex k = 0; k < steps; ++k) {
      current[k] = t == 0 ? builder.add_event(t)
                          : builder.add_event_after(t, previous_thread[k]);
    }
    previous_thread = std::move(current);
  }
  return std::move(builder).build();
}

std::uint64_t binomial(std::uint64_t n, std::uint64_t k) {
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    result = result * (n - k + i) / i;
  }
  return result;
}

TEST(WidePoset, ClocksSpillToHeap) {
  VectorClock vc(24);
  EXPECT_EQ(vc.size(), 24u);
  vc[23] = 7;
  VectorClock copy = vc;
  EXPECT_EQ(copy[23], 7u);
  copy.join(vc);
  EXPECT_EQ(copy, vc);
  EXPECT_TRUE(vc.leq(copy));
}

TEST(WidePoset, BuilderAndInvariants) {
  const Poset poset = make_random(20, 120, 0.6, 5);
  poset.check_invariants();
  EXPECT_EQ(poset.num_threads(), 20u);
}

TEST(WidePoset, AntichainCounts) {
  const Poset poset = make_antichain(20);
  const EnumStats stats =
      enumerate_lexical(poset, [](const Frontier&) {});
  EXPECT_EQ(stats.states, 1u << 20);
}

TEST(WidePoset, StaircaseClosedFormCount) {
  // i(P) = C(threads + steps, steps).
  const Poset poset = make_staircase(20, 4);
  const EnumStats stats = enumerate_lexical(poset, [](const Frontier&) {});
  EXPECT_EQ(stats.states, binomial(24, 4));
}

TEST(WidePoset, EnumeratorsAgree) {
  const Poset poset = make_staircase(18, 3);
  const auto lexical = collect_all(EnumAlgorithm::kLexical, poset);
  const auto dfs = collect_all(EnumAlgorithm::kDfs, poset);
  const auto bfs = collect_all(EnumAlgorithm::kBfs, poset);
  EXPECT_TRUE(all_distinct(lexical));
  EXPECT_EQ(lexical.size(), binomial(21, 3));
  EXPECT_EQ(as_set(lexical), as_set(dfs));
  EXPECT_EQ(as_set(lexical), as_set(bfs));
}

TEST(WidePoset, ParamountExactlyOnce) {
  const Poset poset = make_staircase(20, 4);
  ParamountOptions options;
  options.num_workers = 4;
  const ParamountResult result =
      enumerate_paramount(poset, options, [](const Frontier&) {});
  EXPECT_EQ(result.states, binomial(24, 4));
}

TEST(WidePoset, IntervalsStayConsistent) {
  const Poset poset = make_random(24, 96, 0.8, 8);
  for (const Interval& iv :
       compute_intervals(poset, TopoPolicy::kInterleave)) {
    EXPECT_TRUE(poset.is_consistent(iv.gbnd));
    EXPECT_TRUE(iv.gmin.leq(iv.gbnd));
  }
}

}  // namespace
}  // namespace paramount
