#include "poset/poset.hpp"

#include <gtest/gtest.h>

#include "poset/poset_builder.hpp"
#include "test_helpers.hpp"

namespace paramount {
namespace {

using testing::make_chain;
using testing::make_figure4_poset;
using testing::make_grid;
using testing::make_random;

TEST(PosetBuilder, ProcessOrderClocks) {
  PosetBuilder builder(2);
  builder.add_event(0);
  builder.add_event(0);
  const Poset poset = std::move(builder).build();
  EXPECT_EQ(poset.vc(0, 1), (VectorClock{1, 0}));
  EXPECT_EQ(poset.vc(0, 2), (VectorClock{2, 0}));
}

TEST(PosetBuilder, RemoteDependencyJoinsClocks) {
  // Reconstructs Figure 4(d): e1[2].vc = [2,1], e2[1].vc = [0,1].
  const Poset poset = make_figure4_poset();
  EXPECT_EQ(poset.vc(0, 1), (VectorClock{1, 0}));
  EXPECT_EQ(poset.vc(1, 1), (VectorClock{0, 1}));
  EXPECT_EQ(poset.vc(0, 2), (VectorClock{2, 1}));
  EXPECT_EQ(poset.vc(1, 2), (VectorClock{1, 2}));
}

TEST(PosetBuilder, ExplicitClockValidated) {
  PosetBuilder builder(2);
  builder.add_event_with_clock(0, OpKind::kInternal, 0, VectorClock{1, 0});
  builder.add_event_with_clock(1, OpKind::kInternal, 0, VectorClock{1, 1});
  const Poset poset = std::move(builder).build();
  EXPECT_TRUE(poset.happened_before(EventId{0, 1}, EventId{1, 1}));
}

TEST(Poset, CountsEventsPerThread) {
  const Poset poset = make_grid(3, 5);
  EXPECT_EQ(poset.num_threads(), 2u);
  EXPECT_EQ(poset.num_events(0), 3u);
  EXPECT_EQ(poset.num_events(1), 5u);
  EXPECT_EQ(poset.total_events(), 8u);
}

TEST(Poset, HappenedBeforeWithinThread) {
  const Poset poset = make_chain(3);
  EXPECT_TRUE(poset.happened_before(EventId{0, 1}, EventId{0, 3}));
  EXPECT_FALSE(poset.happened_before(EventId{0, 3}, EventId{0, 1}));
  EXPECT_FALSE(poset.happened_before(EventId{0, 2}, EventId{0, 2}));
}

TEST(Poset, HappenedBeforeAcrossThreads) {
  const Poset poset = make_figure4_poset();
  EXPECT_TRUE(poset.happened_before(EventId{1, 1}, EventId{0, 2}));
  EXPECT_FALSE(poset.happened_before(EventId{0, 2}, EventId{1, 1}));
}

TEST(Poset, ConcurrentEvents) {
  const Poset poset = make_figure4_poset();
  EXPECT_TRUE(poset.concurrent(EventId{0, 1}, EventId{1, 1}));
  EXPECT_TRUE(poset.concurrent(EventId{0, 2}, EventId{1, 2}));
  EXPECT_FALSE(poset.concurrent(EventId{1, 1}, EventId{0, 2}));
  EXPECT_FALSE(poset.concurrent(EventId{0, 1}, EventId{0, 1}));
}

TEST(Poset, FrontiersAndConsistency) {
  const Poset poset = make_figure4_poset();
  EXPECT_EQ(poset.full_frontier(), (Frontier{2, 2}));
  EXPECT_EQ(poset.empty_frontier(), (Frontier{0, 0}));
  // Figure 4: G1 = {1,0} and G2 = {1,2} consistent, G3 = {2,0} not
  // (e2[1] → e1[2] but e2[1] ∉ G3).
  EXPECT_TRUE(poset.is_consistent(Frontier{1, 0}));
  EXPECT_TRUE(poset.is_consistent(Frontier{1, 2}));
  EXPECT_FALSE(poset.is_consistent(Frontier{2, 0}));
  EXPECT_TRUE(poset.is_consistent(poset.empty_frontier()));
  EXPECT_TRUE(poset.is_consistent(poset.full_frontier()));
}

TEST(Poset, InvariantsHoldOnRandomPosets) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Poset poset = make_random(5, 60, 0.4, seed);
    poset.check_invariants();  // aborts on violation
    EXPECT_EQ(poset.total_events(), 60u);
  }
}

TEST(Poset, EventAccessorsRoundTrip) {
  const Poset poset = make_figure4_poset();
  const Event& e = poset.event(EventId{0, 2});
  EXPECT_EQ(e.id.tid, 0u);
  EXPECT_EQ(e.id.index, 2u);
  EXPECT_EQ(e.vc, poset.vc(0, 2));
}

TEST(EventId, PackedAndToString) {
  const EventId id{3, 7};
  EXPECT_EQ(id.packed(), (std::uint64_t{3} << 32) | 7u);
  EXPECT_EQ(id.to_string(), "e3[7]");
  EXPECT_EQ(id, (EventId{3, 7}));
  EXPECT_NE(id, (EventId{3, 8}));
}

TEST(OpKind, Names) {
  EXPECT_STREQ(to_string(OpKind::kAcquire), "acquire");
  EXPECT_STREQ(to_string(OpKind::kCollection), "collection");
}

}  // namespace
}  // namespace paramount
