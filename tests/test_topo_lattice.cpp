// Tests for topological sorts and the lattice oracles.
#include <gtest/gtest.h>

#include "poset/global_state.hpp"
#include "poset/lattice.hpp"
#include "poset/topo_sort.hpp"
#include "test_helpers.hpp"

namespace paramount {
namespace {

using testing::make_antichain;
using testing::make_chain;
using testing::make_figure2_poset;
using testing::make_figure4_poset;
using testing::make_grid;
using testing::make_random;

// ---- topological sorts ----

TEST(TopoSort, ChainHasUniqueOrder) {
  const Poset poset = make_chain(4);
  for (const auto policy : {TopoPolicy::kInterleave, TopoPolicy::kThreadMajor,
                            TopoPolicy::kRandom}) {
    const auto order = topological_sort(poset, policy, 9);
    ASSERT_EQ(order.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(order[i], (EventId{0, static_cast<EventIndex>(i + 1)}));
    }
  }
}

TEST(TopoSort, AllPoliciesYieldLinearExtensions) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Poset poset = make_random(4, 50, 0.5, seed);
    for (const auto policy : {TopoPolicy::kInterleave,
                              TopoPolicy::kThreadMajor, TopoPolicy::kRandom}) {
      const auto order = topological_sort(poset, policy, seed);
      EXPECT_TRUE(is_linear_extension(poset, order))
          << "policy=" << to_string(policy) << " seed=" << seed;
    }
  }
}

TEST(TopoSort, ThreadMajorDrainsLowThreadsFirst) {
  const Poset poset = make_grid(2, 2);  // independent chains
  const auto order = topological_sort(poset, TopoPolicy::kThreadMajor);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0].tid, 0u);
  EXPECT_EQ(order[1].tid, 0u);
  EXPECT_EQ(order[2].tid, 1u);
  EXPECT_EQ(order[3].tid, 1u);
}

TEST(TopoSort, InterleaveAlternatesOnIndependentChains) {
  const Poset poset = make_grid(2, 2);
  const auto order = topological_sort(poset, TopoPolicy::kInterleave);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_NE(order[0].tid, order[1].tid);  // round-robin
}

TEST(TopoSort, RandomPolicyDeterministicPerSeed) {
  const Poset poset = make_random(4, 40, 0.3, 5);
  const auto a = topological_sort(poset, TopoPolicy::kRandom, 123);
  const auto b = topological_sort(poset, TopoPolicy::kRandom, 123);
  const auto c = topological_sort(poset, TopoPolicy::kRandom, 124);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // overwhelmingly likely for 40 events
}

TEST(TopoSort, RespectsCrossThreadEdges) {
  const Poset poset = make_figure4_poset();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto order = topological_sort(poset, TopoPolicy::kRandom, seed);
    // e2[1] must precede e1[2].
    std::size_t pos_e21 = 0, pos_e12 = 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == (EventId{1, 1})) pos_e21 = i;
      if (order[i] == (EventId{0, 2})) pos_e12 = i;
    }
    EXPECT_LT(pos_e21, pos_e12);
  }
}

TEST(TopoSort, IsLinearExtensionRejectsViolations) {
  const Poset poset = make_figure4_poset();
  // e1[2] before its predecessor e2[1].
  EXPECT_FALSE(is_linear_extension(
      poset, {{0, 1}, {0, 2}, {1, 1}, {1, 2}}));
  // Wrong process order.
  EXPECT_FALSE(is_linear_extension(
      poset, {{0, 1}, {1, 2}, {1, 1}, {0, 2}}));
  // Too short.
  EXPECT_FALSE(is_linear_extension(poset, {{0, 1}}));
  // A valid one.
  EXPECT_TRUE(is_linear_extension(
      poset, {{1, 1}, {0, 1}, {0, 2}, {1, 2}}));
}

// ---- lattice oracles ----

TEST(Lattice, ChainCount) {
  EXPECT_EQ(count_ideals(make_chain(0)).value(), 1u);
  EXPECT_EQ(count_ideals(make_chain(5)).value(), 6u);
  EXPECT_EQ(count_ideals(make_chain(100)).value(), 101u);
}

TEST(Lattice, AntichainCountIsPowerOfTwo) {
  EXPECT_EQ(count_ideals(make_antichain(1)).value(), 2u);
  EXPECT_EQ(count_ideals(make_antichain(6)).value(), 64u);
  EXPECT_EQ(count_ideals(make_antichain(10)).value(), 1024u);
}

TEST(Lattice, GridCountIsProductOfPrefixCounts) {
  // Two independent chains: every pair of prefixes is an ideal.
  EXPECT_EQ(count_ideals(make_grid(3, 4)).value(), 4u * 5u);
  EXPECT_EQ(count_ideals(make_grid(7, 2)).value(), 8u * 3u);
}

TEST(Lattice, Figure4Has7States) {
  // 3×3 frontiers minus the inconsistent {2,0} and {0,2} (Figure 4(c)).
  EXPECT_EQ(count_ideals(make_figure4_poset()).value(), 7u);
}

TEST(Lattice, Figure2Has8States) {
  // The paper's Figure 2(b) shows G1..G8.
  EXPECT_EQ(count_ideals(make_figure2_poset()).value(), 8u);
}

TEST(Lattice, CapReturnsNullopt) {
  EXPECT_EQ(count_ideals(make_antichain(10), /*cap=*/100), std::nullopt);
}

TEST(Lattice, AllIdealsAreConsistentAndDistinct) {
  const Poset poset = make_random(4, 24, 0.4, 3);
  const auto ideals = all_ideals(poset);
  std::set<testing::Key> seen;
  for (const Frontier& f : ideals) {
    EXPECT_TRUE(poset.is_consistent(f));
    EXPECT_TRUE(seen.insert(testing::key_of(f)).second) << "duplicate state";
  }
  EXPECT_EQ(ideals.size(), count_ideals(poset).value());
}

TEST(Lattice, JoinAndMeetAreConsistent) {
  const Poset poset = make_random(4, 24, 0.4, 4);
  const auto ideals = all_ideals(poset);
  // The lattice is closed under join and meet (distributive lattice).
  for (std::size_t i = 0; i < ideals.size(); i += 7) {
    for (std::size_t j = 0; j < ideals.size(); j += 11) {
      EXPECT_TRUE(poset.is_consistent(ideal_join(ideals[i], ideals[j])));
      EXPECT_TRUE(poset.is_consistent(ideal_meet(ideals[i], ideals[j])));
    }
  }
}

// ---- global-state primitives ----

TEST(GlobalState, EventEnabledRespectsDependencies) {
  const Poset poset = make_figure4_poset();
  // At {1,0}: e1[2] needs e2[1] — not enabled; e2[1] is enabled.
  EXPECT_FALSE(event_enabled(poset, Frontier{1, 0}, 0));
  EXPECT_TRUE(event_enabled(poset, Frontier{1, 0}, 1));
  // At {1,1}: e1[2] becomes enabled.
  EXPECT_TRUE(event_enabled(poset, Frontier{1, 1}, 0));
  // Past the end of a thread: not enabled.
  EXPECT_FALSE(event_enabled(poset, Frontier{2, 2}, 0));
}

TEST(GlobalState, SuccessorsMatchFigure4) {
  const Poset poset = make_figure4_poset();
  const auto succ = successors(poset, Frontier{1, 1});
  std::set<testing::Key> keys;
  for (const Frontier& f : succ) keys.insert(testing::key_of(f));
  EXPECT_EQ(keys, (std::set<testing::Key>{{2, 1}, {1, 2}}));
}

TEST(GlobalState, LeastStateContainingIsVectorClock) {
  const Poset poset = make_figure4_poset();
  EXPECT_EQ(least_state_containing(poset, EventId{0, 2}),
            (Frontier{2, 1}));
}

TEST(GlobalState, RankCountsEvents) {
  EXPECT_EQ(state_rank(Frontier{2, 1, 3}), 6u);
}

}  // namespace
}  // namespace paramount
