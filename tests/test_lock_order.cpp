// Lock-order fixture for the OnlinePoset insert/pin mutexes.
//
// The declared order (poset/online_poset.hpp) is insert_mutex_ before
// pin_mutex_ (PM_ACQUIRED_AFTER). These tests drive every path that takes
// both — insert(pin=true), pin_interval, collect, EnumGuard release — under
// a ScheduleController so each (policy, seed) replays one deterministic
// interleaving, plus a raw-thread hammer that gives TSan's lock-order
// analysis real concurrent acquisitions to order-check.
//
// The deliberately inverted variant at the bottom (compiled only under
// -DPARAMOUNT_LOCK_ORDER_INVERT) acquires two PM_ACQUIRED_AFTER-declared
// mutexes in the wrong order; the CI static-analysis step compiles this file
// with the define and -Werror=thread-safety and must FAIL, proving the
// annotations actually catch an inversion rather than merely decorating it.
#include "poset/online_poset.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "runtime/schedule_controller.hpp"
#include "util/sync.hpp"

namespace paramount {
namespace {

// One worker under the controller: every poset operation is a schedule
// point, so the (policy, seed) pair fully determines how inserts, pins,
// collects, and releases interleave across threads.
void scheduled_worker(ScheduleController& controller, OnlinePoset& poset,
                      ThreadId tid, EventIndex events) {
  for (EventIndex i = 1; i <= events; ++i) {
    // Cross-thread clock: adopt everything published so far (exact while
    // holding the token — nobody else can insert). The edges let the
    // watermark advance, so collect() below genuinely reclaims.
    VectorClock clock = poset.published_frontier();
    clock[tid] = i;
    const OnlinePoset::Inserted ins =
        poset.insert(tid, OpKind::kInternal, 0, clock, /*pin=*/true);
    OnlinePoset::EnumGuard guard(&poset, ins.pin_slot);
    controller.yield_point(tid);

    if (i % 4 == 0) {
      // Second pin on the same interval via the tooling entry point.
      OnlinePoset::EnumGuard extra = poset.pin_interval(ins.gmin);
      controller.yield_point(tid);
      extra.release();
    }
    if (i % 8 == 0) {
      poset.collect();
      controller.yield_point(tid);
    }
    guard.release();
    controller.yield_point(tid);
  }
}

class LockOrder
    : public ::testing::TestWithParam<
          std::pair<ScheduleController::Policy, std::uint64_t>> {};

TEST_P(LockOrder, InsertPinCollectUnderSchedule) {
  const auto [policy, seed] = GetParam();
  constexpr std::size_t kThreads = 3;
  constexpr EventIndex kEvents = 40;
  OnlinePoset poset(kThreads);
  ScheduleController controller(kThreads, policy, seed);
  controller.start(0);

  std::vector<std::thread> threads;
  for (ThreadId t = 1; t < kThreads; ++t) {
    controller.thread_created(t);
    threads.emplace_back([&, t] {
      controller.thread_arrived(t);
      scheduled_worker(controller, poset, t, kEvents);
      controller.thread_finished(t);
    });
  }
  scheduled_worker(controller, poset, 0, kEvents);
  controller.thread_finished(0);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(poset.total_events(), kThreads * kEvents);
  EXPECT_EQ(poset.outstanding_pins(), 0u);
  poset.collect();
  // The cross-thread clocks advance the watermark, so with no pins left the
  // final pass must have reclaimed a prefix on every thread.
  EXPECT_GT(poset.reclaimed_events(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, LockOrder,
    ::testing::Values(
        std::make_pair(ScheduleController::Policy::kRoundRobin, 1ull),
        std::make_pair(ScheduleController::Policy::kRandom, 1ull),
        std::make_pair(ScheduleController::Policy::kRandom, 2ull),
        std::make_pair(ScheduleController::Policy::kChunked, 1ull),
        std::make_pair(ScheduleController::Policy::kChunked, 7ull)),
    [](const ::testing::TestParamInfo<
        std::pair<ScheduleController::Policy, std::uint64_t>>& info) {
      const char* policy = "";
      switch (info.param.first) {
        case ScheduleController::Policy::kRoundRobin: policy = "RoundRobin";
          break;
        case ScheduleController::Policy::kRandom: policy = "Random"; break;
        case ScheduleController::Policy::kChunked: policy = "Chunked"; break;
      }
      return std::string(policy) + "Seed" + std::to_string(info.param.second);
    });

// Unscheduled hammer: real parallelism on the same mutex pairs, so the TSan
// job observes insert_mutex_/pin_mutex_ acquisitions from four threads at
// once and would flag any ordering violation between them.
TEST(LockOrder, RawThreadHammer) {
  constexpr std::size_t kThreads = 4;
  constexpr EventIndex kEvents = 400;
  OnlinePoset poset(kThreads);
  std::vector<std::thread> threads;
  for (ThreadId t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (EventIndex i = 1; i <= kEvents; ++i) {
        // Own-component-only clocks: always valid regardless of what the
        // other threads have published.
        VectorClock clock(kThreads);
        clock[t] = i;
        const OnlinePoset::Inserted ins =
            poset.insert(t, OpKind::kInternal, 0, clock, /*pin=*/true);
        OnlinePoset::EnumGuard guard(&poset, ins.pin_slot);
        if (i % 16 == 0) poset.collect();
        if (i % 5 == 0) {
          OnlinePoset::EnumGuard extra = poset.pin_interval(ins.gmin);
          extra.release();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(poset.total_events(), kThreads * kEvents);
  EXPECT_EQ(poset.outstanding_pins(), 0u);
}

#ifdef PARAMOUNT_LOCK_ORDER_INVERT
// Negative-compile fixture: two mutexes with the same declared order as the
// OnlinePoset pair, acquired inverted. With -Wthread-safety-beta promoted to
// an error this translation unit must not compile; the CI step asserts the
// failure (and asserts success without the define).
namespace inverted_fixture {

Mutex insert_mutex;
Mutex pin_mutex PM_ACQUIRED_AFTER(insert_mutex);

void inverted_acquisition() {
  MutexLock pin_first(pin_mutex);
  MutexLock insert_second(insert_mutex);  // violates the declared order
}

}  // namespace inverted_fixture

TEST(LockOrder, InvertedFixtureSmoke) {
  inverted_fixture::inverted_acquisition();
}
#endif  // PARAMOUNT_LOCK_ORDER_INVERT

}  // namespace
}  // namespace paramount
