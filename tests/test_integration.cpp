// End-to-end integration: trace a real concurrent program, capture its
// poset, and cross-check every enumeration configuration plus the schedule
// simulator on it — the full pipeline each bench binary exercises.
#include <gtest/gtest.h>

#include "core/paramount.hpp"
#include "core/schedule_sim.hpp"
#include "poset/lattice.hpp"
#include "test_helpers.hpp"
#include "util/sync.hpp"
#include "workloads/harness.hpp"

namespace paramount {
namespace {

using testing::all_distinct;
using testing::as_set;
using testing::key_of;
using testing::Key;

TEST(Integration, RecordedProgramPosetEnumeratesConsistently) {
  const RecordedTrace trace =
      record_program(traced_program("banking"), /*scale=*/1,
                     /*record_sync_events=*/true);
  trace.poset.check_invariants();
  ASSERT_GT(trace.poset.total_events(), 0u);
  EXPECT_TRUE(is_linear_extension(trace.poset, trace.order));

  const auto expected = count_ideals(trace.poset, UINT64_C(5'000'000));
  ASSERT_TRUE(expected.has_value()) << "poset too large for the oracle";

  // Sequential enumerators agree.
  for (const auto algorithm :
       {EnumAlgorithm::kBfs, EnumAlgorithm::kLexical, EnumAlgorithm::kDfs}) {
    const EnumStats stats =
        enumerate_all(algorithm, trace.poset, [](const Frontier&) {});
    EXPECT_EQ(stats.states, *expected) << to_string(algorithm);
  }

  // ParaMount agrees for several worker counts, using the *observed* online
  // order as →p (exactly what the online detector does).
  const auto intervals = compute_intervals(trace.poset, trace.order);
  for (const std::size_t workers : {1u, 2u, 8u}) {
    ParamountOptions options;
    options.num_workers = workers;
    Mutex mutex;
    std::vector<Key> states;
    const ParamountResult result = enumerate_paramount(
        trace.poset, intervals, options, [&](const Frontier& f) {
          MutexLock guard(mutex);
          states.push_back(key_of(f));
        });
    EXPECT_EQ(result.states, *expected);
    EXPECT_TRUE(all_distinct(states));
  }
}

TEST(Integration, IntervalStatsFeedScheduleSimulator) {
  const Poset poset = testing::make_random(6, 80, 0.35, 42);
  ParamountOptions options;
  options.collect_interval_stats = true;
  const ParamountResult result =
      enumerate_paramount(poset, options, [](const Frontier&) {});

  std::vector<double> costs;
  for (const IntervalStat& s : result.interval_stats) {
    costs.push_back(static_cast<double>(s.states));
  }
  const auto t1 = simulate_list_schedule(costs, 1);
  const auto t8 = simulate_list_schedule(costs, 8);
  EXPECT_DOUBLE_EQ(t1.makespan, static_cast<double>(result.states));
  EXPECT_LE(t8.makespan, t1.makespan);
  // Speedup is bounded by 8 and by total/max-task.
  const double speedup = t1.makespan / t8.makespan;
  EXPECT_LE(speedup, 8.0 + 1e-9);
  EXPECT_GE(speedup, 1.0);
}

TEST(Integration, OnlineAndOfflineSeeTheSamePoset) {
  // Record the same deterministic workload twice: once offline, once through
  // the online detector; the enumerated state count must match the offline
  // lattice size (the programs are deterministic in event structure only on
  // race-free workloads, so use sor).
  const TracedProgramSpec& spec = traced_program("sor");
  const RecordedTrace trace = record_program(spec, 1, false);
  const auto expected = count_ideals(trace.poset, UINT64_C(5'000'000));
  ASSERT_TRUE(expected.has_value());

  const auto online = run_paramount_detector(spec, 1);
  EXPECT_EQ(online.states_enumerated, *expected);
  EXPECT_EQ(online.events, trace.poset.total_events());
}

TEST(Integration, AllTracedProgramsProduceValidPosets) {
  for (const TracedProgramSpec& spec : traced_programs()) {
    const RecordedTrace trace = record_program(spec, 1, false);
    trace.poset.check_invariants();
    EXPECT_TRUE(is_linear_extension(trace.poset, trace.order)) << spec.name;
    EXPECT_GT(trace.poset.total_events(), 0u) << spec.name;
    EXPECT_LE(trace.poset.num_threads(), spec.num_threads) << spec.name;
  }
}

TEST(Integration, AllTracedProgramsEnumerableAtTestScale) {
  // Guard against lattice blow-ups that would make the benches unusable.
  for (const TracedProgramSpec& spec : traced_programs()) {
    const RecordedTrace trace = record_program(spec, 1, false);
    const auto count = count_ideals(trace.poset, UINT64_C(20'000'000));
    EXPECT_TRUE(count.has_value())
        << spec.name << " lattice larger than 20M states at scale 1";
  }
}

}  // namespace
}  // namespace paramount
