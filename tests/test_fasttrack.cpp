// FastTrack baseline: the classic race/no-race scenarios, driven through the
// tracing runtime's raw access stream.
#include "detect/fasttrack.hpp"

#include <gtest/gtest.h>

#include "runtime/tracer.hpp"

namespace paramount {
namespace {

TEST(FastTrack, WriteWriteRaceDetected) {
  FastTrackDetector ft(2);
  TraceRuntime rt({.num_threads = 2}, ft);
  TracedVar<int> v(rt, "v", 0);
  TracedThread child(rt, [&] { v.store(1); });
  v.store(2);  // concurrent with the child's write
  child.join();
  rt.finish();
  EXPECT_TRUE(ft.report().has(v.id()));
}

TEST(FastTrack, WriteReadRaceDetected) {
  FastTrackDetector ft(2);
  TraceRuntime rt({.num_threads = 2}, ft);
  TracedVar<int> v(rt, "v", 0);
  TracedThread child(rt, [&] { (void)v.load(); });
  v.store(2);
  child.join();
  rt.finish();
  EXPECT_TRUE(ft.report().has(v.id()));
}

TEST(FastTrack, ReadReadIsNotARace) {
  FastTrackDetector ft(2);
  TraceRuntime rt({.num_threads = 2}, ft);
  TracedVar<int> v(rt, "v", 0);
  TracedThread child(rt, [&] { (void)v.load(); });
  (void)v.load();
  child.join();
  rt.finish();
  EXPECT_FALSE(ft.report().has(v.id()));
}

TEST(FastTrack, LockProtectedAccessesAreClean) {
  FastTrackDetector ft(2);
  TraceRuntime rt({.num_threads = 2}, ft);
  TracedMutex m(rt);
  TracedVar<int> v(rt, "v", 0);
  TracedThread child(rt, [&] {
    for (int i = 0; i < 10; ++i) {
      TracedLockGuard guard(m);
      v.store(v.load() + 1);
    }
  });
  for (int i = 0; i < 10; ++i) {
    TracedLockGuard guard(m);
    v.store(v.load() + 1);
  }
  child.join();
  rt.finish();
  EXPECT_FALSE(ft.report().has(v.id()));
  EXPECT_EQ(v.unsafe_load(), 20);
}

TEST(FastTrack, ForkJoinOrderedAccessesAreClean) {
  FastTrackDetector ft(2);
  TraceRuntime rt({.num_threads = 2}, ft);
  TracedVar<int> v(rt, "v", 0);
  v.store(1);  // before the fork
  TracedThread child(rt, [&] { v.store(2); });
  child.join();
  v.store(3);  // after the join
  rt.finish();
  EXPECT_FALSE(ft.report().has(v.id()));
}

TEST(FastTrack, ReadSharedThenRacyWrite) {
  // Several ordered readers inflate the read vector; a later unordered write
  // must be checked against all of them.
  FastTrackDetector ft(3);
  TraceRuntime rt({.num_threads = 3}, ft);
  TracedMutex m(rt);
  TracedVar<int> v(rt, "v", 0);
  v.store(1);  // main writes first (before forks: ordered)

  TracedThread r1(rt, [&] { (void)v.load(); });
  TracedThread r2(rt, [&] {
    (void)v.load();
    // ...and then writes without any synchronization: races with r1's read.
    v.store(9);
  });
  r1.join();
  r2.join();
  rt.finish();
  EXPECT_TRUE(ft.report().has(v.id()));
}

TEST(FastTrack, NoInitializationExemption) {
  // The counterpart of the ParaMount detector's §5.2 exemption: a benign
  // unsynchronized publication IS reported by FastTrack.
  FastTrackDetector ft(2);
  TraceRuntime rt({.num_threads = 2}, ft);
  TracedVar<int> v(rt, "v", 0);
  std::atomic<bool> ready{false};
  TracedThread reader(rt, [&] {
    while (!ready.load(std::memory_order_acquire)) std::this_thread::yield();
    (void)v.load();
  });
  v.store(42);  // initialization write, unsynchronized publication
  ready.store(true, std::memory_order_release);
  reader.join();
  rt.finish();
  EXPECT_TRUE(ft.report().has(v.id()));
}

TEST(FastTrack, SameEpochFastPathStillClean) {
  FastTrackDetector ft(1);
  TraceRuntime rt({.num_threads = 1}, ft);
  TracedVar<int> v(rt, "v", 0);
  for (int i = 0; i < 100; ++i) v.store(i);  // same collection, same epoch
  for (int i = 0; i < 100; ++i) (void)v.load();
  rt.finish();
  EXPECT_EQ(ft.report().num_racy_vars(), 0u);
}

TEST(FastTrack, ReportKeepsFirstWitnessPerVar) {
  FastTrackDetector ft(2);
  TraceRuntime rt({.num_threads = 2}, ft);
  TracedVar<int> a(rt, "a", 0);
  TracedVar<int> b(rt, "b", 0);
  TracedThread child(rt, [&] {
    a.store(1);
    b.store(1);
  });
  a.store(2);
  b.store(2);
  child.join();
  rt.finish();
  EXPECT_EQ(ft.report().num_racy_vars(), 2u);
  const auto findings = ft.report().findings();
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].var, a.id());
  EXPECT_EQ(findings[1].var, b.id());
}

}  // namespace
}  // namespace paramount
