# Golden check for `paramount-trace info`: regenerates a fixed-seed corpus
# trace and diffs the info output against the committed golden. Any drift in
# the on-disk layout (header size, chunk framing, encoding width) shows up
# here as a byte count or chunk boundary change — bump the format version
# and regenerate the golden deliberately, never silently.
#
# Variables: TRACE_TOOL (paramount-trace binary), GOLDEN (committed file),
# WORK_DIR (scratch), SCENARIO, THREADS, EVENTS (generation parameters).
set(trace_file ${WORK_DIR}/golden_${SCENARIO}.pmt)
execute_process(
  COMMAND ${TRACE_TOOL} gen --scenario=${SCENARIO} --threads=${THREADS}
          --events=${EVENTS} --seed=42 --out=${trace_file}
  RESULT_VARIABLE gen_result OUTPUT_QUIET)
if(NOT gen_result EQUAL 0)
  message(FATAL_ERROR "paramount-trace gen failed (${gen_result})")
endif()

execute_process(
  COMMAND ${TRACE_TOOL} info --input=${trace_file} --chunks
  RESULT_VARIABLE info_result OUTPUT_VARIABLE got)
if(NOT info_result EQUAL 0)
  message(FATAL_ERROR "paramount-trace info failed (${info_result})")
endif()

file(READ ${GOLDEN} want)
if(NOT got STREQUAL want)
  message(FATAL_ERROR "info output drifted from ${GOLDEN}:\n"
                      "---- got ----\n${got}\n---- want ----\n${want}")
endif()
