// Sliding-window reclamation for the online poset: watermark computation,
// EnumGuard pinning, GC-on/GC-off equivalence, bounded memory under long
// streams, and the detector's eviction accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "core/online_paramount.hpp"
#include "detect/race_predicate.hpp"
#include "poset/online_poset.hpp"
#include "runtime/access.hpp"
#include "test_helpers.hpp"
#include "util/sync.hpp"
#include "workloads/event_stream.hpp"

namespace paramount {
namespace {

using testing::all_distinct;
using testing::as_set;
using testing::key_of;
using testing::Key;

// Drives `total_events` of a deterministic synthetic stream through an
// OnlineParamount with the given options; returns every visited state.
struct StreamRun {
  std::vector<Key> states;
  std::size_t peak_poset_bytes = 0;
  std::size_t final_poset_bytes = 0;
};

StreamRun run_stream(SyntheticEventStream::Params params,
                     std::uint64_t total_events,
                     OnlineParamount::Options options) {
  StreamRun run;
  Mutex mutex;
  OnlineParamount driver(
      params.num_threads, options,
      [&](const OnlinePoset&, EventId, const Frontier& f) {
        MutexLock guard(mutex);
        run.states.push_back(key_of(f));
      });
  SyntheticEventStream stream(params);
  for (std::uint64_t i = 0; i < total_events; ++i) {
    SyntheticEventStream::StreamEvent ev = stream.next();
    driver.submit(ev.tid, ev.kind, ev.object, std::move(ev.clock));
    if ((i & 255) == 0) {
      run.peak_poset_bytes =
          std::max(run.peak_poset_bytes, driver.poset().heap_bytes());
    }
  }
  driver.drain();
  run.peak_poset_bytes =
      std::max(run.peak_poset_bytes, driver.poset().heap_bytes());
  // Like the CLI: one final collect once the stream has drained, so
  // final_poset_bytes reports the post-GC plateau rather than whatever was
  // resident when the last periodic collect happened to fire.
  if (options.window_policy.enabled()) driver.collect();
  run.final_poset_bytes = driver.poset().heap_bytes();
  return run;
}

TEST(WindowGc, CollectAdvancesToClockFloorMinusOne) {
  OnlinePoset poset(2);
  poset.insert(0, OpKind::kInternal, 0, VectorClock{1, 0});
  poset.insert(1, OpKind::kInternal, 0, VectorClock{0, 1});
  poset.insert(0, OpKind::kInternal, 0, VectorClock{2, 1});
  poset.insert(1, OpKind::kInternal, 0, VectorClock{2, 2});

  // Clock floor = min({2,1}, {2,2}) = {2,1}; index w[j] itself stays live.
  const auto stats = poset.collect();
  EXPECT_EQ(stats.reclaimed_events, 1u);
  EXPECT_EQ(poset.window_base(0), 1u);
  EXPECT_EQ(poset.window_base(1), 0u);
  EXPECT_EQ(poset.first_live_index(0), 2u);
  EXPECT_FALSE(poset.is_live(0, 1));
  EXPECT_TRUE(poset.is_live(0, 2));
  EXPECT_EQ(poset.reclaimed_events(), 1u);
  // Live reads still work, and published counts are unaffected.
  EXPECT_EQ(key_of(poset.vc(0, 2)), (Key{2, 1}));
  EXPECT_EQ(poset.num_events(0), 2u);

  // The watermark is monotone: a second pass with no new events is a no-op.
  EXPECT_EQ(poset.collect().reclaimed_events, 0u);
}

TEST(WindowGc, ThreadWithNoEventsPinsWatermarkAtZero) {
  OnlinePoset poset(2);
  for (EventIndex i = 1; i <= 100; ++i) {
    poset.insert(0, OpKind::kInternal, 0, VectorClock{i, 0});
  }
  // Thread 1's first event could still reference anything already published.
  const auto stats = poset.collect();
  EXPECT_EQ(stats.reclaimed_events, 0u);
  EXPECT_EQ(poset.window_base(0), 0u);
}

TEST(WindowGc, EnumGuardPinsAndReleaseUnpins) {
  OnlinePoset poset(2);
  // Tightly synchronized pair of threads: the clock floor alone would let
  // collect() reclaim almost everything.
  for (EventIndex i = 1; i <= 64; ++i) {
    poset.insert(0, OpKind::kInternal, 0,
                 VectorClock{i, static_cast<EventIndex>(i - 1)});
    poset.insert(1, OpKind::kInternal, 0, VectorClock{i, i});
  }

  // A stalled in-flight interval with Gmin {3,2} pins the watermark there.
  OnlinePoset::EnumGuard guard = poset.pin_interval(Frontier{3, 2});
  EXPECT_EQ(poset.outstanding_pins(), 1u);
  poset.collect();
  EXPECT_EQ(poset.window_base(0), 2u);
  EXPECT_EQ(poset.window_base(1), 1u);
  EXPECT_TRUE(poset.is_live(0, 3));
  EXPECT_TRUE(poset.is_live(1, 2));

  guard.release();
  EXPECT_EQ(poset.outstanding_pins(), 0u);
  const auto stats = poset.collect();
  EXPECT_GT(stats.reclaimed_events, 0u);
  EXPECT_GT(poset.window_base(0), 2u);
}

TEST(WindowGc, InsertWithPinIsAdoptedByGuard) {
  OnlinePoset poset(1);
  const auto plain = poset.insert(0, OpKind::kInternal, 0, VectorClock{1},
                                  /*pin=*/false);
  EXPECT_EQ(plain.pin_slot, OnlinePoset::kNoPin);

  const auto pinned = poset.insert(0, OpKind::kInternal, 0, VectorClock{2},
                                   /*pin=*/true);
  ASSERT_NE(pinned.pin_slot, OnlinePoset::kNoPin);
  EXPECT_EQ(poset.outstanding_pins(), 1u);
  {
    OnlinePoset::EnumGuard guard(&poset, pinned.pin_slot);
    EXPECT_TRUE(guard.active());
    // The pin holds the watermark at the pinned Gmin {2} => base 1, even
    // though the clock floor would allow base 2.
    poset.insert(0, OpKind::kInternal, 0, VectorClock{3});
    poset.collect();
    EXPECT_EQ(poset.window_base(0), 1u);
  }
  EXPECT_EQ(poset.outstanding_pins(), 0u);
  poset.collect();
  EXPECT_EQ(poset.window_base(0), 2u);
}

TEST(WindowGc, CollectReturnsStorageToTheAllocator) {
  OnlinePoset poset(1);
  for (EventIndex i = 1; i <= 20000; ++i) {
    poset.insert(0, OpKind::kInternal, 0, VectorClock{i});
  }
  const std::size_t before = poset.heap_bytes();
  const auto stats = poset.collect();
  EXPECT_EQ(stats.reclaimed_events, 19999u);
  EXPECT_LT(stats.resident_bytes, before / 2);
  EXPECT_EQ(poset.heap_bytes(), stats.resident_bytes);
}

#ifndef NDEBUG
TEST(WindowGcDeathTest, ReadingReclaimedIndexAsserts) {
  OnlinePoset poset(1);
  for (EventIndex i = 1; i <= 100; ++i) {
    poset.insert(0, OpKind::kInternal, 0, VectorClock{i});
  }
  poset.collect();
  ASSERT_FALSE(poset.is_live(0, 1));
  EXPECT_DEATH(poset.vc(0, 1), "");
}
#endif

// GC-on must enumerate exactly the states GC-off enumerates, across seeds,
// collect cadences, and inline/pooled execution.
TEST(WindowGc, GcOnMatchesGcOffOracle) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SyntheticEventStream::Params params;
    params.num_threads = 4;
    params.num_locks = 2;
    params.sync_probability = 0.7;
    params.seed = seed;

    const StreamRun oracle = run_stream(params, 2000, {});
    EXPECT_TRUE(all_distinct(oracle.states));

    for (const std::size_t workers : {std::size_t{0}, std::size_t{3}}) {
      for (const std::uint64_t gc_every : {std::uint64_t{1}, std::uint64_t{64}}) {
        OnlineParamount::Options options;
        options.async_workers = workers;
        options.window_policy.gc_every = gc_every;
        const StreamRun run = run_stream(params, 2000, options);
        EXPECT_EQ(run.states.size(), oracle.states.size())
            << "seed " << seed << " workers " << workers << " gc_every "
            << gc_every;
        EXPECT_EQ(as_set(run.states), as_set(oracle.states))
            << "seed " << seed << " workers " << workers << " gc_every "
            << gc_every;
      }
    }
  }
}

// The bounded-memory claim: >= 100k inserts with concurrent pooled
// enumeration stay on a resident plateau far below the unwindowed run
// (which the ASan job additionally checks for use-after-reclaim).
TEST(WindowGc, StreamingHeapStaysBoundedAcross100kInserts) {
  SyntheticEventStream::Params params;
  params.num_threads = 4;
  params.num_locks = 2;
  params.sync_probability = 0.8;
  params.seed = 9;

  constexpr std::uint64_t kEvents = 200000;
  OnlineParamount::Options windowed;
  windowed.async_workers = 3;
  windowed.window_policy.gc_every = 512;
  const StreamRun gc_run = run_stream(params, kEvents, windowed);

  OnlineParamount::Options unwindowed;
  unwindowed.async_workers = 3;
  const StreamRun ref_run = run_stream(params, kEvents, unwindowed);

  EXPECT_EQ(gc_run.states.size(), ref_run.states.size());
  std::cout << "windowed peak=" << gc_run.peak_poset_bytes
            << " windowed final=" << gc_run.final_poset_bytes
            << " unwindowed final=" << ref_run.final_poset_bytes << "\n";
  // The unwindowed poset keeps all 200k events resident forever. The
  // windowed peak rides the worker backlog (queued intervals pin the
  // watermark), so it is timing-dependent — but it must stay well below the
  // linear footprint, and the post-drain plateau is just the partially
  // covered tail segments.
  EXPECT_LT(gc_run.peak_poset_bytes * 2, ref_run.final_poset_bytes);
  EXPECT_LT(gc_run.final_poset_bytes * 6, ref_run.final_poset_bytes);
}

// collect() hammered from a dedicated thread while producers insert and
// pooled workers enumerate: pins must keep every in-flight box resident
// (TSan covers the ordering, the state count covers the semantics).
TEST(WindowGc, ConcurrentCollectEnumerateStress) {
  SyntheticEventStream::Params params;
  params.num_threads = 4;
  params.num_locks = 2;
  params.sync_probability = 0.7;
  params.seed = 21;
  const std::uint64_t total_events = 8000;

  const StreamRun oracle = run_stream(params, total_events, {});

  OnlineParamount::Options options;
  options.async_workers = 2;
  options.window_policy.gc_every = 128;
  std::atomic<std::uint64_t> states{0};
  OnlineParamount driver(
      params.num_threads, options,
      [&](const OnlinePoset&, EventId, const Frontier&) {
        // relaxed: state tally, read after drain() below.
        states.fetch_add(1, std::memory_order_relaxed);
      });

  // The stream is sequential, and each event's clock may reference the event
  // popped just before it, so submission must stay under the stream lock
  // (popping t0#k+1 and submitting it before t0#k lands would violate the
  // insert-order contract). The producers still vary the timing between
  // inserts; the concurrency under test — pooled enumeration racing the
  // collector — lives on the pool workers and the collector thread.
  Mutex stream_mutex;
  SyntheticEventStream stream(params);
  std::uint64_t produced = 0;
  std::atomic<bool> done{false};

  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      while (true) {
        MutexLock guard(stream_mutex);
        if (produced == total_events) return;
        ++produced;
        SyntheticEventStream::StreamEvent ev = stream.next();
        driver.submit(ev.tid, ev.kind, ev.object, std::move(ev.clock));
      }
    });
  }
  std::thread collector([&] {
    // relaxed: advisory stop flag; the collector's work is self-contained.
    while (!done.load(std::memory_order_relaxed)) {
      driver.collect();
      std::this_thread::yield();
    }
  });

  for (std::thread& p : producers) p.join();
  driver.drain();
  // relaxed: advisory stop flag, see the collector loop.
  done.store(true, std::memory_order_relaxed);
  collector.join();

  EXPECT_EQ(states.load(), oracle.states.size());
  EXPECT_GT(driver.poset().reclaimed_events(), 0u);
}

TEST(WindowGc, DetectorCountsWindowEvictions) {
  OnlinePoset poset(2);
  AccessTable table(2);
  RaceReport report;
  std::atomic<std::uint64_t> evictions{0};

  AccessSet writes;
  writes.merge(/*var=*/7, /*is_write=*/true, /*is_init=*/false);
  table.append(0, writes);
  table.append(1, writes);

  const auto e0 =
      poset.insert(0, OpKind::kCollection, 0, VectorClock{1, 0});
  const auto e1 =
      poset.insert(1, OpKind::kCollection, 0, VectorClock{0, 1});
  const Frontier both{1, 1};

  // Sanity: with everything resident the racy pair is reported.
  check_races(poset, table, e1.id, both, report, &evictions);
  EXPECT_EQ(report.num_racy_vars(), 1u);
  EXPECT_EQ(evictions.load(), 0u);

  // Force e0 out of the window (no pins, clock floors past it), then
  // re-check the same state: the pair is dropped and counted, not read.
  poset.insert(0, OpKind::kInternal, 0, VectorClock{2, 1});
  poset.insert(1, OpKind::kInternal, 0, VectorClock{2, 2});
  poset.collect();
  ASSERT_FALSE(poset.is_live(0, 1));

  RaceReport after;
  check_races(poset, table, e1.id, both, after, &evictions);
  EXPECT_EQ(after.num_racy_vars(), 0u);
  EXPECT_EQ(evictions.load(), 1u);

  // An evicted interval owner is itself dropped and counted.
  check_races(poset, table, e0.id, both, after, &evictions);
  EXPECT_EQ(evictions.load(), 2u);
}

}  // namespace
}  // namespace paramount
