#include "util/inlined_vector.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

#include <cstdint>
#include <numeric>
#include <vector>

namespace paramount {
namespace {

using IV = InlinedVector<std::uint32_t, 4>;

TEST(InlinedVector, StartsEmptyAndInline) {
  IV v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.heap_bytes(), 0u);
}

TEST(InlinedVector, CountConstructorFills) {
  IV v(3, 7);
  ASSERT_EQ(v.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(v[i], 7u);
}

TEST(InlinedVector, InitializerList) {
  IV v{1, 2, 3};
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.front(), 1u);
  EXPECT_EQ(v.back(), 3u);
}

TEST(InlinedVector, PushBackWithinInlineCapacity) {
  IV v;
  for (std::uint32_t i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 4u);
}

TEST(InlinedVector, SpillsToHeapBeyondInlineCapacity) {
  IV v;
  for (std::uint32_t i = 0; i < 20; ++i) v.push_back(i);
  EXPECT_FALSE(v.is_inline());
  EXPECT_GT(v.heap_bytes(), 0u);
  for (std::uint32_t i = 0; i < 20; ++i) EXPECT_EQ(v[i], i);
}

TEST(InlinedVector, PopBack) {
  IV v{1, 2, 3};
  v.pop_back();
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.back(), 2u);
}

TEST(InlinedVector, ResizeGrowsWithValue) {
  IV v{1};
  v.resize(6, 9);
  ASSERT_EQ(v.size(), 6u);
  EXPECT_EQ(v[0], 1u);
  for (std::size_t i = 1; i < 6; ++i) EXPECT_EQ(v[i], 9u);
}

TEST(InlinedVector, ResizeShrinks) {
  IV v{1, 2, 3};
  v.resize(1);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 1u);
}

TEST(InlinedVector, CopyConstructInline) {
  IV a{1, 2};
  IV b(a);
  EXPECT_EQ(a, b);
  b[0] = 42;
  EXPECT_NE(a, b);  // deep copy
}

TEST(InlinedVector, CopyConstructHeap) {
  IV a;
  for (std::uint32_t i = 0; i < 10; ++i) a.push_back(i);
  IV b(a);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(b.is_inline());
}

TEST(InlinedVector, CopyAssignReplacesContents) {
  IV a{1, 2, 3};
  IV b{9};
  b = a;
  EXPECT_EQ(a, b);
}

TEST(InlinedVector, SelfAssignIsNoop) {
  IV a{1, 2, 3};
  const IV expected = a;
  a = *&a;
  EXPECT_EQ(a, expected);
}

TEST(InlinedVector, MoveConstructInlineCopies) {
  IV a{1, 2};
  IV b(std::move(a));
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 1u);
}

TEST(InlinedVector, MoveConstructHeapSteals) {
  IV a;
  for (std::uint32_t i = 0; i < 10; ++i) a.push_back(i);
  const auto* data = a.data();
  IV b(std::move(a));
  EXPECT_EQ(b.data(), data);  // pointer stolen, no copy
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move)
}

TEST(InlinedVector, MoveAssignHeap) {
  IV a;
  for (std::uint32_t i = 0; i < 10; ++i) a.push_back(i);
  IV b{5};
  b = std::move(a);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(b[9], 9u);
}

TEST(InlinedVector, EqualityComparesElementwise) {
  EXPECT_EQ((IV{1, 2, 3}), (IV{1, 2, 3}));
  EXPECT_NE((IV{1, 2, 3}), (IV{1, 2}));
  EXPECT_NE((IV{1, 2, 3}), (IV{1, 2, 4}));
}

TEST(InlinedVector, IterationMatchesIndices) {
  IV v;
  for (std::uint32_t i = 0; i < 9; ++i) v.push_back(i * 3);
  std::uint32_t expected = 0;
  for (std::uint32_t x : v) {
    EXPECT_EQ(x, expected);
    expected += 3;
  }
}

TEST(InlinedVector, AssignOverwrites) {
  IV v{1, 2, 3};
  v.assign(5, 8);
  ASSERT_EQ(v.size(), 5u);
  for (std::uint32_t x : v) EXPECT_EQ(x, 8u);
}

TEST(InlinedVector, ReserveKeepsContents) {
  IV v{1, 2, 3};
  v.reserve(100);
  EXPECT_GE(v.capacity(), 100u);
  EXPECT_EQ(v, (IV{1, 2, 3}));
}

TEST(InlinedVector, ClearKeepsCapacity) {
  IV v;
  for (std::uint32_t i = 0; i < 10; ++i) v.push_back(i);
  const auto cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);
}

TEST(InlinedVector, StressAgainstStdVector) {
  IV v;
  std::vector<std::uint32_t> ref;
  std::uint64_t state = 42;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t r = splitmix64(state);
    switch (r % 4) {
      case 0:
      case 1:
        v.push_back(static_cast<std::uint32_t>(r));
        ref.push_back(static_cast<std::uint32_t>(r));
        break;
      case 2:
        if (!ref.empty()) {
          v.pop_back();
          ref.pop_back();
        }
        break;
      case 3: {
        const std::size_t n = r % 17;
        v.resize(n, 1);
        ref.resize(n, 1);
        break;
      }
    }
    ASSERT_EQ(v.size(), ref.size());
    for (std::size_t k = 0; k < ref.size(); ++k) ASSERT_EQ(v[k], ref[k]);
  }
}

}  // namespace
}  // namespace paramount
