// Online ParaMount (Algorithm 4 + Theorem 3): streaming insertion with
// concurrent interval enumeration must enumerate exactly the states the
// offline algorithms enumerate over the final poset.
#include "core/online_paramount.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "poset/lattice.hpp"
#include "poset/online_poset.hpp"
#include "poset/topo_sort.hpp"
#include "test_helpers.hpp"
#include "util/sync.hpp"

namespace paramount {
namespace {

using testing::all_distinct;
using testing::as_set;
using testing::key_of;
using testing::make_random;
using testing::Key;

// Replays an offline poset into an OnlineParamount in the given insertion
// order (which must be a linear extension).
std::vector<Key> replay(const Poset& poset, const std::vector<EventId>& order,
                        OnlineParamount::Options options) {
  Mutex mutex;
  std::vector<Key> states;
  OnlineParamount online(
      poset.num_threads(), options,
      [&](const OnlinePoset&, EventId, const Frontier& f) {
        MutexLock guard(mutex);
        states.push_back(key_of(f));
      });
  for (const EventId id : order) {
    const Event& e = poset.event(id);
    online.submit(id.tid, e.kind, e.object, e.vc);
  }
  online.drain();
  return states;
}

TEST(OnlinePoset, InsertPublishesEventAndBounds) {
  OnlinePoset poset(2);
  const auto a = poset.insert(0, OpKind::kInternal, 0, VectorClock{1, 0});
  EXPECT_TRUE(a.first);
  EXPECT_EQ(a.id, (EventId{0, 1}));
  EXPECT_EQ(key_of(a.gmin), (Key{1, 0}));
  EXPECT_EQ(key_of(a.gbnd), (Key{1, 0}));

  const auto b = poset.insert(1, OpKind::kInternal, 0, VectorClock{1, 1});
  EXPECT_FALSE(b.first);
  EXPECT_EQ(b.position, 1u);
  EXPECT_EQ(key_of(b.gbnd), (Key{1, 1}));
  EXPECT_EQ(poset.total_events(), 2u);
  EXPECT_TRUE(poset.is_consistent(b.gbnd));
}

TEST(OnlinePoset, RejectsForwardReferences) {
  OnlinePoset poset(2);
  // Clock references event 1 of thread 1, which was never inserted.
  EXPECT_DEATH(poset.insert(0, OpKind::kInternal, 0, VectorClock{1, 1}),
               "not yet inserted");
}

TEST(OnlinePoset, RejectsBadOwnComponent) {
  OnlinePoset poset(2);
  EXPECT_DEATH(poset.insert(0, OpKind::kInternal, 0, VectorClock{5, 0}),
               "own clock component");
}

TEST(OnlinePoset, Figure8BoundaryDependsOnInsertionOrder) {
  // The paper's Figure 8: the same poset (e2[1] → e1[2]) inserted in two
  // different observed orders yields different Gbnd(e1[2]) snapshots — both
  // valid Definition-1 boundaries for their respective →p.
  {
    // (a) e1[1] →p e2[1] →p e1[2] →p e2[2]: snapshot misses e2[2].
    OnlinePoset poset(2);
    poset.insert(0, OpKind::kInternal, 0, VectorClock{1, 0});
    poset.insert(1, OpKind::kInternal, 0, VectorClock{0, 1});
    const auto e12 = poset.insert(0, OpKind::kInternal, 0, VectorClock{2, 1});
    poset.insert(1, OpKind::kInternal, 0, VectorClock{0, 2});
    EXPECT_EQ(key_of(e12.gbnd), (Key{2, 1}));
  }
  {
    // (b) e1[1] →p e2[1] →p e2[2] →p e1[2]: snapshot includes e2[2].
    OnlinePoset poset(2);
    poset.insert(0, OpKind::kInternal, 0, VectorClock{1, 0});
    poset.insert(1, OpKind::kInternal, 0, VectorClock{0, 1});
    poset.insert(1, OpKind::kInternal, 0, VectorClock{0, 2});
    const auto e12 = poset.insert(0, OpKind::kInternal, 0, VectorClock{2, 1});
    EXPECT_EQ(key_of(e12.gbnd), (Key{2, 2}));
  }
}

// Regression: the out-of-lock published_frontier() used to read the
// per-thread counters at different instants, so a reader racing a writer
// could observe a *torn* cut — thread 1's count read late includes events
// whose thread-0 predecessors were not counted. The writer below makes every
// thread-1 event depend on the latest thread-0 event, so any torn read is an
// inconsistent frontier; the snapshot must validate-and-retry (or fall back
// to the insertion lock) instead.
TEST(OnlinePoset, PublishedFrontierHammerStaysConsistent) {
  // 8 threads widen the snapshot's read window: the reader scans 8 counters
  // while the writer publishes rounds of 8 mutually dependent events, so a
  // torn (unvalidated) snapshot reliably catches an earlier-read counter
  // that is stale relative to a later-read one.
  constexpr ThreadId kThreads = 8;
  OnlinePoset poset(kThreads);
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> torn{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const Frontier f = poset.published_frontier();
        if (!poset.is_consistent(f)) {
          // relaxed: failure tally, read after the readers join.
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (EventIndex i = 1; i <= 40000; ++i) {
    // Round i: thread t's event depends on every event this round published
    // before it, so any cut where an earlier thread's count trails a later
    // thread's is inconsistent.
    for (ThreadId t = 0; t < kThreads; ++t) {
      VectorClock vc(kThreads);
      for (ThreadId j = 0; j < kThreads; ++j) {
        vc[j] = j <= t ? i : i - 1;
      }
      poset.insert(t, OpKind::kInternal, 0, std::move(vc));
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();

  EXPECT_EQ(torn.load(), 0u);
}

TEST(OnlineParamount, SequentialReplayMatchesOracle) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Poset poset = make_random(4, 28, 0.4, seed);
    std::set<Key> oracle;
    for (const Frontier& f : all_ideals(poset)) oracle.insert(key_of(f));

    for (const auto policy :
         {TopoPolicy::kInterleave, TopoPolicy::kThreadMajor,
          TopoPolicy::kRandom}) {
      const auto order = topological_sort(poset, policy, seed);
      const auto states = replay(poset, order, {});
      EXPECT_TRUE(all_distinct(states));
      EXPECT_EQ(as_set(states), oracle) << to_string(policy);
    }
  }
}

TEST(OnlineParamount, AsyncWorkersMatchOracle) {
  const Poset poset = make_random(4, 26, 0.4, 11);
  std::set<Key> oracle;
  for (const Frontier& f : all_ideals(poset)) oracle.insert(key_of(f));

  OnlineParamount::Options options;
  options.async_workers = 3;
  const auto order = topological_sort(poset, TopoPolicy::kInterleave);
  const auto states = replay(poset, order, options);
  EXPECT_TRUE(all_distinct(states));
  EXPECT_EQ(as_set(states), oracle);
}

TEST(OnlineParamount, SubroutineChoiceIrrelevant) {
  const Poset poset = make_random(3, 21, 0.5, 13);
  const auto order = topological_sort(poset, TopoPolicy::kInterleave);
  std::set<Key> reference;
  for (const Frontier& f : all_ideals(poset)) reference.insert(key_of(f));
  for (const auto algorithm :
       {EnumAlgorithm::kBfs, EnumAlgorithm::kLexical, EnumAlgorithm::kDfs}) {
    OnlineParamount::Options options;
    options.subroutine = algorithm;
    EXPECT_EQ(as_set(replay(poset, order, options)), reference)
        << to_string(algorithm);
  }
}

TEST(OnlineParamount, CountsStatesAndIntervals) {
  const Poset poset = make_random(4, 20, 0.4, 17);
  const auto order = topological_sort(poset, TopoPolicy::kInterleave);
  OnlineParamount online(poset.num_threads(), {},
                         [](const OnlinePoset&, EventId, const Frontier&) {});
  for (const EventId id : order) {
    online.submit(id.tid, OpKind::kInternal, 0, poset.event(id).vc);
  }
  online.drain();
  EXPECT_EQ(online.intervals_processed(), poset.total_events());
  EXPECT_EQ(online.states_enumerated(), count_ideals(poset).value());
}

// Theorem 3 under real concurrency: producer threads submit their own
// thread's events as soon as all causal predecessors are published, while
// enumeration runs inline on the submitting threads.
TEST(OnlineParamount, ConcurrentProducersMatchOracle) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Poset poset = make_random(4, 32, 0.4, seed);
    std::set<Key> oracle;
    for (const Frontier& f : all_ideals(poset)) oracle.insert(key_of(f));

    Mutex mutex;
    std::vector<Key> states;
    OnlineParamount online(
        poset.num_threads(), {},
        [&](const OnlinePoset&, EventId, const Frontier& f) {
          MutexLock guard(mutex);
          states.push_back(key_of(f));
        });

    // One producer per poset thread; each waits (by spinning on the online
    // poset's published counts) until its next event's dependencies are in.
    std::vector<std::thread> producers;
    for (ThreadId t = 0; t < poset.num_threads(); ++t) {
      producers.emplace_back([&, t] {
        for (EventIndex i = 1; i <= poset.num_events(t); ++i) {
          const VectorClock& vc = poset.vc(t, i);
          while (true) {
            bool ready = true;
            for (ThreadId j = 0; j < poset.num_threads(); ++j) {
              if (j != t && online.poset().num_events(j) < vc[j]) {
                ready = false;
                break;
              }
            }
            if (ready) break;
            std::this_thread::yield();
          }
          online.submit(t, OpKind::kInternal, 0, vc);
        }
      });
    }
    for (std::thread& p : producers) p.join();
    online.drain();

    EXPECT_TRUE(all_distinct(states));
    EXPECT_EQ(as_set(states), oracle);
  }
}

}  // namespace
}  // namespace paramount
