// Work-stealing scheduler (util/work_stealing.hpp) and the stealing
// ThreadPool: deque LIFO/FIFO discipline, growth, exactly-once delivery
// under owner/thief races, the victim policy, and load redistribution
// under deliberately skewed preloads.
#include "util/work_stealing.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "obs/telemetry.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace paramount {
namespace {

using Deque = WsDeque<std::size_t>;

TEST(WsDeque, OwnerPopsLifo) {
  Deque deque;
  for (std::size_t i = 0; i < 5; ++i) deque.push(i);
  std::size_t out = 0;
  for (std::size_t i = 5; i-- > 0;) {
    ASSERT_TRUE(deque.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(deque.pop(out));
}

TEST(WsDeque, ThiefStealsFifo) {
  Deque deque;
  for (std::size_t i = 0; i < 5; ++i) deque.push(i);
  std::size_t out = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    ASSERT_EQ(deque.steal(out), Deque::StealResult::kSuccess);
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(deque.steal(out), Deque::StealResult::kEmpty);
}

TEST(WsDeque, PopAfterStealSeesRemainder) {
  Deque deque;
  for (std::size_t i = 0; i < 4; ++i) deque.push(i);
  std::size_t out = 0;
  ASSERT_EQ(deque.steal(out), Deque::StealResult::kSuccess);  // takes 0
  ASSERT_TRUE(deque.pop(out));
  EXPECT_EQ(out, 3u);
  EXPECT_EQ(deque.size_approx(), 2u);
}

TEST(WsDeque, GrowsPastInitialCapacity) {
  constexpr std::size_t kCount = 1000;
  Deque deque(/*initial_capacity=*/2);
  for (std::size_t i = 0; i < kCount; ++i) deque.push(i);
  EXPECT_EQ(deque.size_approx(), kCount);
  std::set<std::size_t> seen;
  std::size_t out = 0;
  while (deque.pop(out)) seen.insert(out);
  EXPECT_EQ(seen.size(), kCount);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), kCount - 1);
}

TEST(WsDeque, GrowthInterleavedWithStealsLosesNothing) {
  constexpr std::size_t kCount = 512;
  Deque deque(/*initial_capacity=*/2);
  std::set<std::size_t> seen;
  std::size_t out = 0;
  for (std::size_t i = 0; i < kCount; ++i) {
    deque.push(i);
    if (i % 3 == 0 && deque.steal(out) == Deque::StealResult::kSuccess) {
      seen.insert(out);
    }
  }
  while (deque.pop(out)) seen.insert(out);
  EXPECT_EQ(seen.size(), kCount);
}

// The core concurrency contract: one owner pushing then popping, several
// thieves stealing throughout — every element is delivered to exactly one
// taker. The last-element owner/thief CAS race is exercised constantly
// because the owner drains while thieves are still sweeping.
TEST(WsDeque, ConcurrentOwnerAndThievesTakeEachElementOnce) {
  constexpr std::size_t kCount = 100000;
  constexpr std::size_t kThieves = 3;
  Deque deque(/*initial_capacity=*/8);
  std::vector<std::atomic<std::uint32_t>> taken(kCount);
  for (auto& t : taken) t.store(0);
  std::atomic<std::size_t> remaining{kCount};

  auto take = [&](std::size_t value) {
    ASSERT_LT(value, kCount);
    EXPECT_EQ(taken[value].fetch_add(1), 0u) << "element taken twice";
    remaining.fetch_sub(1);
  };

  std::vector<std::thread> thieves;
  for (std::size_t t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      std::size_t out = 0;
      while (remaining.load() > 0) {
        if (deque.steal(out) == Deque::StealResult::kSuccess) take(out);
      }
    });
  }

  // Owner: push everything, popping intermittently, then drain.
  std::size_t out = 0;
  for (std::size_t i = 0; i < kCount; ++i) {
    deque.push(i);
    if (i % 7 == 0 && deque.pop(out)) take(out);
  }
  while (deque.pop(out)) take(out);

  for (auto& thief : thieves) thief.join();
  EXPECT_EQ(remaining.load(), 0u);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(taken[i].load(), 1u) << "element " << i;
  }
}

TEST(VictimSequence, VisitsEveryOtherWorkerExactlyOnce) {
  Rng rng(17);
  for (std::size_t self = 0; self < 5; ++self) {
    VictimSequence seq(self, 5, rng);
    std::set<std::size_t> victims;
    std::size_t v = 0;
    while (seq.next(v)) {
      EXPECT_NE(v, self);
      EXPECT_LT(v, 5u);
      EXPECT_TRUE(victims.insert(v).second) << "victim visited twice";
    }
    EXPECT_EQ(victims.size(), 4u);
  }
}

TEST(VictimSequence, SingleWorkerHasNoVictims) {
  Rng rng(17);
  VictimSequence seq(0, 1, rng);
  std::size_t v = 0;
  EXPECT_FALSE(seq.next(v));
}

TEST(VictimSequence, StartOffsetVaries) {
  // Across many sweeps the first victim should not always be the same
  // worker — that convoy is what the seeded offset exists to avoid.
  Rng rng(99);
  std::set<std::size_t> first_victims;
  for (int sweep = 0; sweep < 64; ++sweep) {
    VictimSequence seq(0, 8, rng);
    std::size_t v = 0;
    ASSERT_TRUE(seq.next(v));
    first_victims.insert(v);
  }
  EXPECT_GT(first_victims.size(), 1u);
}

TEST(WorkStealingScheduler, WorkerSeedsAreDecorrelated) {
  EXPECT_NE(detail::worker_seed(1, 0), detail::worker_seed(1, 1));
  EXPECT_NE(detail::worker_seed(1, 0), detail::worker_seed(2, 0));
}

TEST(WorkStealingScheduler, PopOnlySeesOwnDeque) {
  WorkStealingScheduler<std::size_t> scheduler(3, /*seed=*/1);
  scheduler.push(0, 42);
  std::size_t out = 0;
  EXPECT_FALSE(scheduler.pop(1, out));
  EXPECT_TRUE(scheduler.pop(0, out));
  EXPECT_EQ(out, 42u);
}

TEST(WorkStealingScheduler, StealSweepFindsLoadedSibling) {
  WorkStealingScheduler<std::size_t> scheduler(4, /*seed=*/1);
  scheduler.push(2, 7);
  std::size_t out = 0;
  std::uint64_t failed_probes = 0;
  EXPECT_TRUE(scheduler.steal(0, out, &failed_probes));
  EXPECT_EQ(out, 7u);
  EXPECT_LE(failed_probes, 2u);  // at most the two empty victims
  // Now everything is empty: a full sweep fails and counts every victim.
  failed_probes = 0;
  EXPECT_FALSE(scheduler.steal(0, out, &failed_probes));
  EXPECT_EQ(failed_probes, 3u);
}

// Skewed preload: every item starts on worker 0's deque, so workers 1..3
// can only ever be fed by theft. Each worker holds its first item until
// every worker has one — that models a skewed long-running task and, more
// importantly, keeps the supply from draining before a late-scheduled
// thread gets its chance to steal, making the ≥1-per-worker assertion
// deterministic rather than a race against the OS scheduler.
TEST(WorkStealingScheduler, StealingFeedsEveryWorkerUnderSkew) {
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kItems = 4096;
  WorkStealingScheduler<std::size_t> scheduler(kWorkers, /*seed=*/3);
  for (std::size_t i = 0; i < kItems; ++i) scheduler.push(0, i);

  std::vector<std::atomic<std::size_t>> executed(kWorkers);
  for (auto& e : executed) e.store(0);
  std::atomic<std::size_t> remaining{kItems};
  std::atomic<std::size_t> fed{0};  // workers that have executed >= 1 item

  auto worker = [&](std::size_t w) {
    std::size_t item = 0;
    while (remaining.load() > 0) {
      if (!scheduler.pop(w, item) && !scheduler.steal(w, item)) continue;
      if (executed[w].fetch_add(1) == 0) {
        fed.fetch_add(1);
        while (fed.load() < kWorkers) std::this_thread::yield();
      }
      remaining.fetch_sub(1);
    }
  };
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWorkers; ++w) threads.emplace_back(worker, w);
  for (auto& t : threads) t.join();

  std::size_t total = 0;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    EXPECT_GE(executed[w].load(), 1u) << "worker " << w << " starved";
    total += executed[w].load();
  }
  EXPECT_EQ(total, kItems);
}

// Pool analog of the skew test: park all workers but one, then submit a
// burst. Least-loaded placement spreads the burst over every queue —
// including the parked workers' — so the lone free worker can only finish
// the burst by stealing from its blocked siblings.
TEST(ThreadPool, LoneFreeWorkerStealsFromParkedSiblings) {
  constexpr std::size_t kWorkers = 4;
  constexpr int kBurst = 32;
  obs::Telemetry telemetry(kWorkers, /*trace_capacity_per_shard=*/64);
  ThreadPool pool(kWorkers, &telemetry);

  std::atomic<int> parked{0};
  std::atomic<bool> release{false};
  for (std::size_t i = 0; i + 1 < kWorkers; ++i) {
    pool.submit([&] {
      parked.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (parked.load() + 1 < static_cast<int>(kWorkers)) {
    std::this_thread::yield();
  }

  std::atomic<int> ran{0};
  for (int i = 0; i < kBurst; ++i) {
    pool.submit([&] { ran.fetch_add(1); });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (ran.load() < kBurst) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "burst stalled with " << ran.load() << "/" << kBurst
        << " tasks run — stealing is not happening";
    std::this_thread::yield();
  }
  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(ran.load(), kBurst);

  if constexpr (obs::kTelemetryEnabled) {
    const obs::MetricsSnapshot snap = telemetry.metrics().snapshot();
    const obs::CounterSnapshot* steals = snap.find_counter("pool.steals");
    ASSERT_NE(steals, nullptr);
    EXPECT_GT(steals->total, 0u);
  }
}

TEST(ThreadPool, BurstRunsEveryTaskAcrossWorkers) {
  constexpr std::size_t kWorkers = 8;
  ThreadPool pool(kWorkers);
  std::atomic<int> ran{0};
  for (int i = 0; i < 2000; ++i) {
    pool.submit([&] { ran.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 2000);
}

}  // namespace
}  // namespace paramount
