#include "util/stable_vector.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace paramount {
namespace {

TEST(StableVector, StartsEmpty) {
  StableVector<int> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.heap_bytes(), 0u);
}

TEST(StableVector, PushBackReturnsIndex) {
  StableVector<int> v;
  EXPECT_EQ(v.push_back(10), 0u);
  EXPECT_EQ(v.push_back(20), 1u);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 20);
  EXPECT_EQ(v.back(), 20);
}

TEST(StableVector, ElementsAcrossManySegments) {
  StableVector<int, 4> v;
  constexpr int kCount = 10000;
  for (int i = 0; i < kCount; ++i) v.push_back(i * 2);
  ASSERT_EQ(v.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) ASSERT_EQ(v[i], i * 2);
}

TEST(StableVector, AddressesAreStableAcrossGrowth) {
  StableVector<int, 4> v;
  v.push_back(123);
  const int* p = &v[0];
  for (int i = 0; i < 5000; ++i) v.push_back(i);
  EXPECT_EQ(&v[0], p);
  EXPECT_EQ(*p, 123);
}

TEST(StableVector, HeapBytesGrowWithSegments) {
  StableVector<int, 4> v;
  v.push_back(1);
  const auto small = v.heap_bytes();
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_GT(v.heap_bytes(), small);
}

TEST(StableVector, MutableAccess) {
  StableVector<int> v;
  v.push_back(1);
  v[0] = 99;
  EXPECT_EQ(v[0], 99);
}

// Single writer appends while several readers continuously validate every
// published element. TSan-clean by design; under plain execution this checks
// the acquire/release protocol delivers fully written elements.
TEST(StableVector, ConcurrentReadersSeePublishedElements) {
  StableVector<std::uint64_t, 8> v;
  constexpr std::uint64_t kCount = 20000;
  std::atomic<bool> stop{false};

  auto reader = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t n = v.size();
      for (std::size_t i = 0; i < n; ++i) {
        // Element i was published with value i * 3 + 1; a torn or
        // un-published read would break this.
        if (v[i] != i * 3 + 1) {
          ADD_FAILURE() << "reader saw bad value at " << i;
          return;
        }
      }
    }
  };

  std::thread r1(reader);
  std::thread r2(reader);
  for (std::uint64_t i = 0; i < kCount; ++i) v.push_back(i * 3 + 1);
  stop.store(true, std::memory_order_relaxed);
  r1.join();
  r2.join();
  EXPECT_EQ(v.size(), kCount);
}

}  // namespace
}  // namespace paramount
