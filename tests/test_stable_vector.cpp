#include "util/stable_vector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace paramount {
namespace {

TEST(StableVector, StartsEmpty) {
  StableVector<int> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.heap_bytes(), 0u);
}

TEST(StableVector, PushBackReturnsIndex) {
  StableVector<int> v;
  EXPECT_EQ(v.push_back(10), 0u);
  EXPECT_EQ(v.push_back(20), 1u);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 20);
  EXPECT_EQ(v.back(), 20);
}

TEST(StableVector, ElementsAcrossManySegments) {
  StableVector<int, 4> v;
  constexpr int kCount = 10000;
  for (int i = 0; i < kCount; ++i) v.push_back(i * 2);
  ASSERT_EQ(v.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) ASSERT_EQ(v[i], i * 2);
}

TEST(StableVector, AddressesAreStableAcrossGrowth) {
  StableVector<int, 4> v;
  v.push_back(123);
  const int* p = &v[0];
  for (int i = 0; i < 5000; ++i) v.push_back(i);
  EXPECT_EQ(&v[0], p);
  EXPECT_EQ(*p, 123);
}

TEST(StableVector, HeapBytesGrowWithSegments) {
  StableVector<int, 4> v;
  v.push_back(1);
  const auto small = v.heap_bytes();
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_GT(v.heap_bytes(), small);
}

TEST(StableVector, MutableAccess) {
  StableVector<int> v;
  v.push_back(1);
  v[0] = 99;
  EXPECT_EQ(v[0], 99);
}

TEST(StableVector, ReleasePrefixFreesWholeSegmentsOnly) {
  // Segments: 4, 8, 16, 16, 16, ... (Base=4, MaxSegment=16).
  StableVector<int, 4, 16> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  const auto full = v.heap_bytes();

  // n = 10 covers segment 0 ([0,4)) entirely but only part of segment 1
  // ([4,12)): exactly one segment's worth of storage goes back.
  v.release_prefix(10);
  EXPECT_EQ(v.released(), 4u);
  EXPECT_EQ(v.heap_bytes(), full - 4 * sizeof(int));

  // Surviving elements keep their values and addresses.
  for (int i = 4; i < 100; ++i) ASSERT_EQ(v[i], i);

  // Releasing the same prefix again is a no-op.
  v.release_prefix(10);
  EXPECT_EQ(v.released(), 4u);
  EXPECT_EQ(v.heap_bytes(), full - 4 * sizeof(int));
}

TEST(StableVector, ReleasePrefixIsMonotoneAndClamped) {
  StableVector<int, 4, 16> v;
  for (int i = 0; i < 60; ++i) v.push_back(i);

  // Far past the end: clamps to size(); every full segment below 60 goes.
  v.release_prefix(1000);
  // Segment starts: 0, 4, 12, 28, 44, 60 — all five segments below 60 free.
  EXPECT_EQ(v.released(), 60u);

  // A smaller n afterwards must not resurrect or double-free anything.
  v.release_prefix(5);
  EXPECT_EQ(v.released(), 60u);

  // Appending continues after a full release.
  const std::size_t idx = v.push_back(777);
  EXPECT_EQ(idx, 60u);
  EXPECT_EQ(v[60], 777);
  EXPECT_EQ(v.size(), 61u);
}

TEST(StableVector, ReleasePrefixBoundsResidencyUnderStreaming) {
  // Streaming append + periodic release: resident bytes must stay bounded by
  // a few max-sized segments instead of growing with the total count.
  StableVector<std::uint64_t, 64, 256> v;
  std::size_t peak = 0;
  for (std::size_t i = 0; i < 64 * 1024; ++i) {
    v.push_back(i);
    if (i % 1024 == 0 && i > 512) v.release_prefix(i - 512);
    peak = std::max(peak, v.heap_bytes());
  }
  // Unreleased storage would be 64Ki * 8 = 512 KiB of elements alone; with
  // the 512-element live tail, element residency is a handful of segments.
  EXPECT_LT(peak, 64 * 1024u * sizeof(std::uint64_t) / 4);
  EXPECT_GT(v.released(), 60 * 1024u);
  for (std::size_t i = v.released(); i < v.size(); ++i) ASSERT_EQ(v[i], i);
}

// Single writer appends while several readers continuously validate every
// published element. TSan-clean by design; under plain execution this checks
// the acquire/release protocol delivers fully written elements.
TEST(StableVector, ConcurrentReadersSeePublishedElements) {
  StableVector<std::uint64_t, 8> v;
  constexpr std::uint64_t kCount = 20000;
  std::atomic<bool> stop{false};

  auto reader = [&] {
    // relaxed: advisory stop flag; element visibility is carried by the
    // vector's own acquire/release protocol under test.
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t n = v.size();
      for (std::size_t i = 0; i < n; ++i) {
        // Element i was published with value i * 3 + 1; a torn or
        // un-published read would break this.
        if (v[i] != i * 3 + 1) {
          ADD_FAILURE() << "reader saw bad value at " << i;
          return;
        }
      }
    }
  };

  std::thread r1(reader);
  std::thread r2(reader);
  for (std::uint64_t i = 0; i < kCount; ++i) v.push_back(i * 3 + 1);
  // relaxed: advisory stop flag, see the reader loop.
  stop.store(true, std::memory_order_relaxed);
  r1.join();
  r2.join();
  EXPECT_EQ(v.size(), kCount);
}

}  // namespace
}  // namespace paramount
