// Annotated synchronization wrappers (util/sync.hpp): mutual exclusion,
// try-lock and guard adoption, condition-variable wakeups, and reader/writer
// sharing. Runs under TSan in CI (suite names match the tsan job's -R Sync
// filter), so the wrappers' forwarding to the std primitives is also checked
// dynamically. Guarded state lives in small structs because PM_GUARDED_BY
// only applies to data members, not locals — which also makes these tests a
// compile-time exercise of the annotations under -DPARAMOUNT_THREAD_SAFETY.
#include "util/sync.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace paramount {
namespace {

struct GuardedCounter {
  Mutex mutex;
  long value PM_GUARDED_BY(mutex) = 0;
};

TEST(SyncMutex, MutualExclusionAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  GuardedCounter counter;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock guard(counter.mutex);
        ++counter.value;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  MutexLock guard(counter.mutex);
  EXPECT_EQ(counter.value, static_cast<long>(kThreads) * kIncrements);
}

TEST(SyncMutex, TryLockFailsWhileHeldAndSucceedsAfter) {
  Mutex mutex;
  {
    MutexLock guard(mutex);
    // Contention must be observed from another thread: locking a std::mutex
    // the same thread already holds is undefined behavior.
    bool acquired = true;
    std::thread prober([&] {
      acquired = mutex.try_lock();
      if (acquired) mutex.unlock();
    });
    prober.join();
    EXPECT_FALSE(acquired);
  }
  const bool acquired = mutex.try_lock();
  EXPECT_TRUE(acquired);
  if (acquired) mutex.unlock();
}

TEST(SyncMutex, AdoptedGuardReleasesOnScopeExit) {
  Mutex mutex;
  const bool acquired = mutex.try_lock();
  ASSERT_TRUE(acquired);
  if (acquired) {
    MutexLock guard(mutex, kAdoptLock);  // takes over the release
  }
  // If the adopted guard failed to unlock, this second try_lock would fail.
  const bool reacquired = mutex.try_lock();
  EXPECT_TRUE(reacquired);
  if (reacquired) mutex.unlock();
}

struct Turnstile {
  Mutex mutex;
  CondVar cv;
  bool ready PM_GUARDED_BY(mutex) = false;
  int count PM_GUARDED_BY(mutex) = 0;
};

TEST(SyncCondVar, NotifyOneWakesPredicateLoop) {
  Turnstile ts;

  std::thread waiter([&] {
    MutexLock lock(ts.mutex);
    while (!ts.ready) ts.cv.wait(ts.mutex);
    ts.count = 1;
  });
  {
    MutexLock lock(ts.mutex);
    ts.ready = true;
  }
  ts.cv.notify_one();
  waiter.join();

  MutexLock lock(ts.mutex);
  EXPECT_EQ(ts.count, 1);
}

TEST(SyncCondVar, NotifyAllWakesEveryWaiter) {
  constexpr int kWaiters = 6;
  Turnstile ts;

  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(ts.mutex);
      while (!ts.ready) ts.cv.wait(ts.mutex);
      ++ts.count;
    });
  }
  {
    MutexLock lock(ts.mutex);
    ts.ready = true;
  }
  ts.cv.notify_all();
  for (std::thread& t : waiters) t.join();

  MutexLock lock(ts.mutex);
  EXPECT_EQ(ts.count, kWaiters);
}

struct Token {
  Mutex mutex;
  CondVar cv;
  int turn PM_GUARDED_BY(mutex) = 0;  // 0 = main's turn, 1 = worker's
};

TEST(SyncCondVar, PingPongHandsTokenBackAndForth) {
  constexpr int kRounds = 1000;
  Token token;

  std::thread worker([&] {
    for (int i = 0; i < kRounds; ++i) {
      MutexLock lock(token.mutex);
      while (token.turn != 1) token.cv.wait(token.mutex);
      token.turn = 0;
      token.cv.notify_one();
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    MutexLock lock(token.mutex);
    while (token.turn != 0) token.cv.wait(token.mutex);
    token.turn = 1;
    token.cv.notify_one();
  }
  worker.join();

  MutexLock lock(token.mutex);
  EXPECT_EQ(token.turn, 0);
}

TEST(SyncSharedMutex, ReadersShareWritersExclude) {
  SharedMutex shared;
  Turnstile ts;

  ReaderLock main_reader(shared);

  // A second reader may enter while the first is held — lock_shared cannot
  // block here, so this terminates deterministically.
  std::thread other_reader([&] {
    ReaderLock r(shared);
    MutexLock lock(ts.mutex);
    ts.ready = true;
    ts.cv.notify_one();
  });
  {
    MutexLock lock(ts.mutex);
    while (!ts.ready) ts.cv.wait(ts.mutex);
  }
  other_reader.join();

  // A writer must be excluded while this thread still reads.
  bool writer_got_in = true;
  std::thread prober([&] {
    writer_got_in = shared.try_lock();
    if (writer_got_in) shared.unlock();
  });
  prober.join();
  EXPECT_FALSE(writer_got_in);
}

TEST(SyncSharedMutex, WriterLockAdoptionAndReaderExclusion) {
  SharedMutex shared;
  const bool acquired = shared.try_lock();
  ASSERT_TRUE(acquired);
  if (acquired) {
    WriterLock guard(shared, kAdoptLock);
    // Readers are excluded while the writer holds the lock.
    bool reader_got_in = true;
    std::thread prober([&] {
      reader_got_in = shared.try_lock_shared();
      if (reader_got_in) shared.unlock_shared();
    });
    prober.join();
    EXPECT_FALSE(reader_got_in);
  }
  const bool readable = shared.try_lock_shared();
  EXPECT_TRUE(readable);
  if (readable) shared.unlock_shared();
}

struct SharedValue {
  SharedMutex mutex;
  long value PM_GUARDED_BY(mutex) = 0;
};

TEST(SyncSharedMutex, WriterIsSerializedWithReaders) {
  constexpr int kWriters = 2;
  constexpr int kRounds = 2000;
  SharedValue sv;
  std::atomic<bool> torn{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        WriterLock guard(sv.mutex);
        sv.value += 2;  // keep the invariant "value is even"
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < kRounds; ++i) {
      ReaderLock guard(sv.mutex);
      if (sv.value % 2 != 0) {
        // relaxed: single-writer flag checked after the joins below.
        torn.store(true, std::memory_order_relaxed);
      }
    }
  });
  for (std::thread& t : threads) t.join();

  EXPECT_FALSE(torn.load());
  WriterLock guard(sv.mutex);
  EXPECT_EQ(sv.value, 2L * kWriters * kRounds);
}

}  // namespace
}  // namespace paramount
