// Ground-truth detection tests over the traced benchmark programs: the
// ParaMount online detector, FastTrack and the offline BFS (RV-analogue)
// detector must agree with each program's known race status (Table 2).
//
// Race *presence* in an observed execution depends on the schedule (a fully
// serialized interleaving can hide a race from any happened-before-based
// predictor — the paper's §5.3 limitation), so positive expectations retry a
// few schedules. Race-FREEDOM must hold on every run: a single false
// positive is a soundness bug.
#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "workloads/harness.hpp"

namespace paramount {
namespace {

constexpr std::size_t kScale = 1;
constexpr int kScheduleRetries = 5;

std::set<std::string> paramount_fields_with_retry(
    const TracedProgramSpec& spec) {
  std::set<std::string> fields;
  for (int attempt = 0; attempt < kScheduleRetries; ++attempt) {
    const auto result = run_paramount_detector(spec, kScale);
    fields.insert(result.racy_fields.begin(), result.racy_fields.end());
    if (fields.size() >= spec.expected_racy_vars.size()) break;
  }
  return fields;
}

std::set<std::string> fasttrack_fields_with_retry(
    const TracedProgramSpec& spec) {
  std::set<std::string> fields;
  for (int attempt = 0; attempt < kScheduleRetries; ++attempt) {
    const auto result = run_fasttrack_detector(spec, kScale);
    fields.insert(result.racy_fields.begin(), result.racy_fields.end());
    if (!fields.empty()) break;
  }
  return fields;
}

class RacyProgram : public ::testing::TestWithParam<const char*> {};

TEST_P(RacyProgram, ParamountFindsTheExpectedFields) {
  const TracedProgramSpec& spec = traced_program(GetParam());
  ASSERT_FALSE(spec.race_free);
  const auto fields = paramount_fields_with_retry(spec);
  for (const std::string& var : spec.expected_racy_vars) {
    EXPECT_TRUE(fields.count(field_of(var)))
        << spec.name << ": expected racy field '" << field_of(var)
        << "' not reported; got {"
        << [&] {
             std::string all;
             for (const auto& f : fields) all += f + ",";
             return all;
           }();
  }
}

TEST_P(RacyProgram, FastTrackAlsoFindsARace) {
  const TracedProgramSpec& spec = traced_program(GetParam());
  EXPECT_FALSE(fasttrack_fields_with_retry(spec).empty()) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(Table2, RacyProgram,
                         ::testing::Values("banking", "set_faulty",
                                           "arraylist1", "tsp", "raytracer",
                                           "hedc", "montecarlo"));

class RaceFreeProgram : public ::testing::TestWithParam<const char*> {};

TEST_P(RaceFreeProgram, ParamountReportsNothingEver) {
  const TracedProgramSpec& spec = traced_program(GetParam());
  ASSERT_TRUE(spec.race_free);
  for (int attempt = 0; attempt < 3; ++attempt) {
    const auto result = run_paramount_detector(spec, kScale);
    EXPECT_TRUE(result.racy_fields.empty())
        << spec.name << " false positive on attempt " << attempt << ": "
        << *result.racy_fields.begin();
  }
}

INSTANTIATE_TEST_SUITE_P(Table2, RaceFreeProgram,
                         ::testing::Values("set_correct", "arraylist2", "sor",
                                           "elevator", "moldyn"));

TEST(Table2Nuance, FastTrackReportsBenignInitOnCorrectSet) {
  // The paper's set(correct) row: FastTrack reports the initialization
  // write; the ParaMount detector's §5.2 exemption does not.
  const TracedProgramSpec& spec = traced_program("set_correct");
  const auto fields = fasttrack_fields_with_retry(spec);
  EXPECT_FALSE(fields.empty());
}

TEST(Detectors, OfflineBfsAgreesWithParamountOnBanking) {
  const TracedProgramSpec& spec = traced_program("banking");
  std::set<std::string> offline_fields;
  for (int attempt = 0; attempt < kScheduleRetries; ++attempt) {
    const auto result = run_offline_bfs_detector(spec, kScale);
    ASSERT_FALSE(result.out_of_memory);
    offline_fields.insert(result.racy_fields.begin(),
                          result.racy_fields.end());
    if (!offline_fields.empty()) break;
  }
  EXPECT_TRUE(offline_fields.count("hot_balance"));
}

TEST(Detectors, OfflineBfsCleanOnSor) {
  const auto result = run_offline_bfs_detector(traced_program("sor"), kScale);
  ASSERT_FALSE(result.out_of_memory);
  EXPECT_TRUE(result.racy_fields.empty());
}

TEST(Detectors, OfflineBfsRunsOutOfBudgetOnWidePoset) {
  // A wide poset (12 fully concurrent single-event threads) overflows a
  // small BFS budget — the deterministic analogue of the paper's o.o.m.
  // rows. (The traced programs at test scale yield narrow lattices, so the
  // width is constructed directly here; bench_table2 exercises the budget
  // against the recorded programs at larger scales.)
  const Poset wide = testing::make_antichain(12);
  AccessTable empty_accesses(12);
  RaceReport report;
  const auto stats = detect_races_offline_bfs(wide, empty_accesses, report,
                                              /*budget_bytes=*/4 * 1024);
  EXPECT_TRUE(stats.out_of_memory);
  EXPECT_EQ(report.num_racy_vars(), 0u);
}

TEST(Detectors, ParamountDetectorCountsStatesAndEvents) {
  const auto result = run_paramount_detector(traced_program("banking"),
                                             kScale);
  EXPECT_GT(result.events, 10u);
  EXPECT_GT(result.states_enumerated, result.events);
}

TEST(Detectors, AsyncModeFindsSameRacesAsInline) {
  const TracedProgramSpec& spec = traced_program("arraylist1");
  OnlineRaceDetector::Options async_options;
  async_options.async_workers = 2;
  std::set<std::string> fields;
  for (int attempt = 0; attempt < kScheduleRetries; ++attempt) {
    const auto result = run_paramount_detector(spec, kScale, async_options);
    fields.insert(result.racy_fields.begin(), result.racy_fields.end());
    if (fields.size() >= 3) break;
  }
  EXPECT_TRUE(fields.count("size"));
}

TEST(Harness, FieldOfStripsPrefixes) {
  EXPECT_EQ(field_of("node3.next"), "next");
  EXPECT_EQ(field_of("G[2]"), "G");
  EXPECT_EQ(field_of("checksum"), "checksum");
  EXPECT_EQ(field_of("result.status"), "status");
}

TEST(Harness, BaseRunCompletes) {
  const auto result = run_base(traced_program("banking"), kScale);
  EXPECT_GE(result.seconds, 0.0);
}

}  // namespace
}  // namespace paramount
