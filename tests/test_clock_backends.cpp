// Differential oracle for the pluggable clock backends (clock_backend.hpp)
// plus unit tests for the TreeClock structure itself.
//
// The contract under test: every backend computes *bit-identical* event
// clocks to the flat VectorClock baseline — join is a componentwise max
// under any representation, only the bookkeeping differs. Everything
// downstream (state counts, .pmt bytes, race sets) is a pure function of
// the event clocks, so the stream-level identity checked here is the
// strongest possible oracle; the enumeration and window-GC tests below
// re-verify the downstream counts anyway, as belt and braces.
#include <gtest/gtest.h>

#include <vector>

#include "core/online_paramount.hpp"
#include "detect/fasttrack.hpp"
#include "poset/clock_backend.hpp"
#include "poset/poset_builder.hpp"
#include "poset/tree_clock.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"
#include "workloads/event_stream.hpp"
#include "workloads/scenarios/scenarios.hpp"

namespace paramount {
namespace {

using testing::as_set;
using testing::collect_all;
using testing::Key;
using testing::key_of;

// ---------------------------------------------------------------- TreeClock

TEST(TreeClock, StartsAtZeroAndTicks) {
  TreeClock tc(3, 1);
  EXPECT_EQ(tc.to_vector(), VectorClock(3));
  tc.increment();
  tc.increment();
  EXPECT_EQ(tc.to_vector(), (VectorClock{0, 2, 0}));
  EXPECT_TRUE(tc.check_structure());
}

TEST(TreeClock, JoinGraftsTheOtherClock) {
  TreeClock a(3, 0), b(3, 1);
  a.increment();
  b.increment();
  b.join(a);  // b learns a's tick
  EXPECT_EQ(b.to_vector(), (VectorClock{1, 1, 0}));
  a.increment();
  b.join(a);  // stale subtree refreshed in place
  EXPECT_EQ(b.to_vector(), (VectorClock{2, 1, 0}));
  a.join(b);
  EXPECT_EQ(a.to_vector(), (VectorClock{2, 1, 0}));
  EXPECT_TRUE(a.check_structure());
  EXPECT_TRUE(b.check_structure());
}

TEST(TreeClock, JoinPrunesAlreadyKnownSubtrees) {
  TreeClock a(4, 0), b(4, 1), c(4, 2);
  a.increment();
  b.increment();
  b.join(a);
  c.increment();
  c.join(b);  // c now knows a transitively
  const std::uint64_t before = c.nodes_visited();
  c.join(b);  // nothing new: fast path, no nodes visited
  EXPECT_EQ(c.nodes_visited(), before);
  EXPECT_EQ(c.to_vector(), (VectorClock{1, 1, 1, 0}));
}

TEST(TreeClock, AdoptMirrorsAlgorithm3) {
  // The worked Algorithm-3 chain from test_vector_clock: t0 acquires, then
  // t1 acquires and transitively sees t0's event through the lock.
  TreeClock t0(2, 0), t1(2, 1), lock(2, TreeClock::kNull);
  t0.increment();
  t0.join(lock);
  lock.adopt(t0);  // vcj ← vci
  EXPECT_EQ(lock.root(), 0u);
  t1.increment();
  t1.join(lock);
  lock.adopt(t1);
  EXPECT_EQ(lock.root(), 1u);
  EXPECT_EQ(t1.to_vector(), (VectorClock{1, 1}));
  EXPECT_EQ(lock.to_vector(), (VectorClock{1, 1}));
  EXPECT_TRUE(lock.check_structure());
}

// The real proof: arbitrary interleavings of tick/join/adopt over several
// threads and timelines stay equal to the flat computation, with the tree
// invariants intact after every step.
TEST(TreeClock, RandomizedDifferentialVsFlatClocks) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const std::size_t n = 3 + rng.next_below(8);
    const std::size_t locks = 1 + rng.next_below(3);
    std::vector<VectorClock> flat_threads(n, VectorClock(n));
    std::vector<VectorClock> flat_locks(locks, VectorClock(n));
    std::vector<TreeClock> tree_threads;
    std::vector<TreeClock> tree_locks;
    for (std::size_t t = 0; t < n; ++t) {
      tree_threads.emplace_back(n, static_cast<ThreadId>(t));
    }
    for (std::size_t l = 0; l < locks; ++l) {
      tree_locks.emplace_back(n, TreeClock::kNull);
    }
    for (int op = 0; op < 400; ++op) {
      const auto tid = static_cast<ThreadId>(rng.next_below(n));
      const std::size_t kind = rng.next_below(3);
      if (kind == 0) {  // local tick
        flat_threads[tid][tid] += 1;
        tree_threads[tid].increment();
      } else if (kind == 1) {  // lock sync (Algorithm 3)
        const std::size_t l = rng.next_below(locks);
        calculate_vector_clock(tid, flat_threads[tid], flat_locks[l]);
        tree_threads[tid].increment();
        tree_threads[tid].join(tree_locks[l]);
        tree_locks[l].adopt(tree_threads[tid]);
        ASSERT_EQ(tree_locks[l].to_vector(), flat_locks[l])
            << "seed " << seed << " op " << op;
      } else {  // absorb another thread (fork/join edge)
        const auto src = static_cast<ThreadId>(rng.next_below(n));
        if (src == tid) continue;
        flat_threads[tid][tid] += 1;
        flat_threads[tid].join(flat_threads[src]);
        tree_threads[tid].increment();
        tree_threads[tid].join(tree_threads[src]);
      }
      ASSERT_EQ(tree_threads[tid].to_vector(), flat_threads[tid])
          << "seed " << seed << " op " << op;
      ASSERT_TRUE(tree_threads[tid].check_structure())
          << "seed " << seed << " op " << op;
    }
    for (const TreeClock& tl : tree_locks) {
      EXPECT_TRUE(tl.check_structure());
    }
  }
}

// ------------------------------------------------------------- ClockEngine

TEST(ClockBackend, ParseAndName) {
  ClockBackend backend = ClockBackend::kFlat;
  for (ClockBackend b : all_clock_backends()) {
    ASSERT_TRUE(parse_clock_backend(clock_backend_name(b), &backend));
    EXPECT_EQ(backend, b);
  }
  EXPECT_FALSE(parse_clock_backend("quantum", &backend));
}

// Same random op schedule through all three engines: every materialized
// clock must match the flat baseline exactly, step by step.
TEST(ClockBackend, EnginesAgreeOnRandomSchedules) {
  for (const std::size_t n : {3u, 16u, 64u}) {
    std::vector<std::unique_ptr<ClockEngine>> engines;
    for (ClockBackend b : all_clock_backends()) {
      engines.push_back(ClockEngine::make(b, n));
    }
    Rng rng(99 + n);
    VectorClock want, got;
    for (int op = 0; op < 500; ++op) {
      const auto tid = static_cast<ThreadId>(rng.next_below(n));
      const std::size_t kind = rng.next_below(3);
      const std::size_t timeline = rng.next_below(5);
      auto src = static_cast<ThreadId>(rng.next_below(n));
      if (src == tid) src = static_cast<ThreadId>((src + 1) % n);
      for (std::size_t e = 0; e < engines.size(); ++e) {
        VectorClock* out = e == 0 ? &want : &got;
        if (kind == 0) {
          engines[e]->local_step(tid, out);
        } else if (kind == 1) {
          engines[e]->sync_step(tid, timeline, out);
        } else {
          engines[e]->absorb_step(tid, src, out);
        }
        if (e != 0) {
          ASSERT_EQ(got, want)
              << clock_backend_name(engines[e]->backend()) << " diverged at op "
              << op << " (n=" << n << ")";
        }
      }
    }
    // Snapshots agree too (the resting state, not just the event clocks).
    for (std::size_t t = 0; t < n; ++t) {
      engines[0]->snapshot(static_cast<ThreadId>(t), &want);
      for (std::size_t e = 1; e < engines.size(); ++e) {
        engines[e]->snapshot(static_cast<ThreadId>(t), &got);
        ASSERT_EQ(got, want);
      }
    }
  }
}

// The tree backend must do far less join work than flat when communication
// has locality — the whole point of the representation. 256 threads sync on
// per-neighborhood locks (16 threads each), so a join only ever needs to
// learn components from the thread's own neighborhood; flat still scans all
// 256 twice per sync. (Under uniformly random global mixing the transfer is
// genuinely dense and the saving shrinks to ~3x — bench_clocks covers that
// regime with wall-clock numbers.)
TEST(ClockBackend, TreeJoinWorkIsSublinearOnWideStreams) {
  constexpr std::size_t kThreads = 256;
  constexpr std::size_t kNeighborhood = 16;  // threads per lock
  auto flat = ClockEngine::make(ClockBackend::kFlat, kThreads);
  auto tree = ClockEngine::make(ClockBackend::kTree, kThreads);
  Rng rng(7);
  VectorClock want, got;
  for (int op = 0; op < 20000; ++op) {
    const ThreadId tid = static_cast<ThreadId>(rng.next_below(kThreads));
    const std::size_t lock = tid / kNeighborhood;
    flat->sync_step(tid, lock, &want);
    tree->sync_step(tid, lock, &got);
    ASSERT_EQ(got, want) << "op " << op;
  }
  EXPECT_LT(tree->join_work(), flat->join_work() / 8)
      << "neighborhood joins should touch ~16 of 256 components";
}

TEST(ClockBackend, SyntheticStreamsIdenticalAcrossBackends) {
  for (const std::size_t n : {16u, 64u}) {
    SyntheticEventStream::Params params;
    params.num_threads = n;
    params.num_locks = 4;
    params.sync_probability = 0.3;
    params.seed = 11;
    params.clock_backend = ClockBackend::kFlat;
    SyntheticEventStream reference(params);
    for (ClockBackend b : {ClockBackend::kTree, ClockBackend::kEpoch}) {
      params.clock_backend = b;
      params.seed = 11;
      SyntheticEventStream::Params ref_params = params;
      ref_params.clock_backend = ClockBackend::kFlat;
      SyntheticEventStream flat(ref_params);
      SyntheticEventStream other(params);
      for (int i = 0; i < 5000; ++i) {
        const auto want = flat.next();
        const auto got = other.next();
        ASSERT_EQ(got.tid, want.tid);
        ASSERT_EQ(got.kind, want.kind);
        ASSERT_EQ(got.object, want.object);
        ASSERT_EQ(got.clock, want.clock)
            << clock_backend_name(b) << " event " << i;
      }
    }
  }
}

// ---------------------------------------------------------------- Scenarios

void expect_identical_streams(const std::string& name, std::size_t threads,
                              std::uint64_t events) {
  ScenarioParams params;
  params.num_threads = threads;
  params.num_events = events;
  params.seed = 42;
  params.clock_backend = ClockBackend::kFlat;
  auto reference = make_scenario(name, params);
  ASSERT_NE(reference, nullptr) << name;
  for (ClockBackend b : {ClockBackend::kTree, ClockBackend::kEpoch}) {
    params.clock_backend = b;
    auto other = make_scenario(name, params);
    params.clock_backend = ClockBackend::kFlat;
    auto flat = make_scenario(name, params);
    trace::TraceEvent want, got;
    std::uint64_t i = 0;
    while (flat->next(&want)) {
      ASSERT_TRUE(other->next(&got)) << name;
      ASSERT_EQ(got.tid, want.tid) << name << " event " << i;
      ASSERT_EQ(got.kind, want.kind) << name << " event " << i;
      ASSERT_EQ(got.object, want.object) << name << " event " << i;
      ASSERT_EQ(got.clock, want.clock)
          << name << "/" << clock_backend_name(b) << " event " << i;
      ASSERT_EQ(got.accesses.size(), want.accesses.size());
      ++i;
    }
    EXPECT_FALSE(other->next(&got));
  }
}

// Identical TraceEvents imply identical .pmt bytes, replay results, and
// race sets for every scenario — the trace-level half of the oracle.
TEST(ClockBackend, ScenarioStreamsIdenticalAcrossBackends) {
  for (const std::string& name : scenario_names()) {
    expect_identical_streams(name, 8, 3000);
  }
}

TEST(ClockBackend, WideScenarioStreamsIdenticalAcrossBackends) {
  expect_identical_streams("lock-convoy-128", 8, 3000);
  expect_identical_streams("fanin-queue-256", 8, 4000);
}

TEST(Scenarios, WideVariantRegistry) {
  EXPECT_EQ(wide_scenario_names().size(), 3 * scenario_names().size());
  ScenarioParams params;
  params.num_events = 10;
  for (const std::string& name : wide_scenario_names()) {
    auto scenario = make_scenario(name, params);
    ASSERT_NE(scenario, nullptr) << name;
    const auto dash = name.find_last_of('-');
    EXPECT_EQ(scenario->num_threads(),
              static_cast<std::size_t>(std::stoul(name.substr(dash + 1))))
        << name;
  }
  EXPECT_EQ(make_scenario("lock-convoy-999", params), nullptr);
}

// ------------------------------------------------- downstream count oracles

std::vector<Key> online_states(SyntheticEventStream::Params params,
                               std::uint64_t total_events,
                               OnlineParamount::Options options) {
  std::vector<Key> states;
  Mutex mutex;
  OnlineParamount driver(
      params.num_threads, options,
      [&](const OnlinePoset&, EventId, const Frontier& f) {
        MutexLock guard(mutex);
        states.push_back(key_of(f));
      });
  SyntheticEventStream stream(params);
  for (std::uint64_t i = 0; i < total_events; ++i) {
    SyntheticEventStream::StreamEvent ev = stream.next();
    driver.submit(ev.tid, ev.kind, ev.object, std::move(ev.clock));
  }
  driver.drain();
  return states;
}

// test_window_gc's oracle, re-run per backend: the enumerated state set is
// identical with and without the sliding window, across all backends.
TEST(ClockBackend, WindowGcStatesIdenticalAcrossBackends) {
  SyntheticEventStream::Params params;
  params.num_threads = 6;
  params.num_locks = 2;
  params.sync_probability = 0.35;
  params.seed = 5;
  constexpr std::uint64_t kEvents = 3000;

  OnlineParamount::Options plain;
  OnlineParamount::Options windowed;
  windowed.window_policy.gc_every = 256;

  params.clock_backend = ClockBackend::kFlat;
  const auto reference = as_set(online_states(params, kEvents, plain));
  for (ClockBackend b : all_clock_backends()) {
    params.clock_backend = b;
    EXPECT_EQ(as_set(online_states(params, kEvents, plain)), reference)
        << clock_backend_name(b);
    EXPECT_EQ(as_set(online_states(params, kEvents, windowed)), reference)
        << clock_backend_name(b) << " (windowed)";
  }
}

// Offline enumeration (all three algorithms) over a poset built from each
// backend's stream: same states, same counts.
TEST(ClockBackend, EnumerationCountsIdenticalAcrossBackends) {
  constexpr std::size_t kThreads = 5;
  constexpr std::uint64_t kEvents = 60;
  std::vector<std::set<Key>> per_algorithm(3);
  bool have_reference = false;
  for (ClockBackend backend : all_clock_backends()) {
    SyntheticEventStream::Params params;
    params.num_threads = kThreads;
    params.num_locks = 2;
    params.sync_probability = 0.4;
    params.seed = 3;
    params.clock_backend = backend;
    SyntheticEventStream stream(params);
    PosetBuilder builder(kThreads);
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      SyntheticEventStream::StreamEvent ev = stream.next();
      builder.add_event_with_clock(ev.tid, ev.kind, ev.object,
                                   std::move(ev.clock));
    }
    const Poset poset = std::move(builder).build();
    const EnumAlgorithm algorithms[] = {
        EnumAlgorithm::kBfs, EnumAlgorithm::kLexical, EnumAlgorithm::kDfs};
    for (int a = 0; a < 3; ++a) {
      const auto states = as_set(collect_all(algorithms[a], poset));
      if (!have_reference) {
        per_algorithm[a] = states;
      } else {
        EXPECT_EQ(states, per_algorithm[a])
            << clock_backend_name(backend) << " algorithm " << a;
      }
    }
    have_reference = true;
  }
  EXPECT_EQ(per_algorithm[0], per_algorithm[1]);
  EXPECT_EQ(per_algorithm[1], per_algorithm[2]);
}

// FastTrack race sets from the hot-var scenario's access stream are
// identical under every backend (the detector consumes backend-produced
// clocks directly).
TEST(ClockBackend, FastTrackRaceSetsIdenticalAcrossBackends) {
  const auto run = [](ClockBackend backend) {
    ScenarioParams params;
    params.num_threads = 8;
    params.num_events = 4000;
    params.seed = 42;
    params.clock_backend = backend;
    auto scenario = make_scenario("hot-var", params);
    FastTrackDetector detector(params.num_threads);
    trace::TraceEvent ev;
    while (scenario->next(&ev)) {
      for (const trace::TraceAccess& a : ev.accesses) {
        detector.on_raw_access(ev.tid, a.var, a.is_write, ev.clock);
      }
    }
    std::set<std::vector<std::uint32_t>> races;
    for (const RaceFinding& f : detector.report().findings()) {
      races.insert({f.var, f.first.tid, f.first.index, f.second.tid,
                    f.second.index});
    }
    return races;
  };
  const auto reference = run(ClockBackend::kFlat);
  EXPECT_FALSE(reference.empty());
  EXPECT_EQ(run(ClockBackend::kTree), reference);
  EXPECT_EQ(run(ClockBackend::kEpoch), reference);
}

}  // namespace
}  // namespace paramount
