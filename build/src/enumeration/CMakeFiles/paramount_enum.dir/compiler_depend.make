# Empty compiler generated dependencies file for paramount_enum.
# This may be replaced when dependencies are built.
