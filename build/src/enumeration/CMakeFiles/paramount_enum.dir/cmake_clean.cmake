file(REMOVE_RECURSE
  "CMakeFiles/paramount_enum.dir/dispatch.cpp.o"
  "CMakeFiles/paramount_enum.dir/dispatch.cpp.o.d"
  "libparamount_enum.a"
  "libparamount_enum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paramount_enum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
