file(REMOVE_RECURSE
  "libparamount_enum.a"
)
