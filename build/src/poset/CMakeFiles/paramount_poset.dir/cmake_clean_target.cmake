file(REMOVE_RECURSE
  "libparamount_poset.a"
)
