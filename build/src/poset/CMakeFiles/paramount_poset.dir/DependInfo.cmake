
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/poset/event.cpp" "src/poset/CMakeFiles/paramount_poset.dir/event.cpp.o" "gcc" "src/poset/CMakeFiles/paramount_poset.dir/event.cpp.o.d"
  "/root/repo/src/poset/lattice.cpp" "src/poset/CMakeFiles/paramount_poset.dir/lattice.cpp.o" "gcc" "src/poset/CMakeFiles/paramount_poset.dir/lattice.cpp.o.d"
  "/root/repo/src/poset/online_poset.cpp" "src/poset/CMakeFiles/paramount_poset.dir/online_poset.cpp.o" "gcc" "src/poset/CMakeFiles/paramount_poset.dir/online_poset.cpp.o.d"
  "/root/repo/src/poset/poset.cpp" "src/poset/CMakeFiles/paramount_poset.dir/poset.cpp.o" "gcc" "src/poset/CMakeFiles/paramount_poset.dir/poset.cpp.o.d"
  "/root/repo/src/poset/poset_builder.cpp" "src/poset/CMakeFiles/paramount_poset.dir/poset_builder.cpp.o" "gcc" "src/poset/CMakeFiles/paramount_poset.dir/poset_builder.cpp.o.d"
  "/root/repo/src/poset/poset_io.cpp" "src/poset/CMakeFiles/paramount_poset.dir/poset_io.cpp.o" "gcc" "src/poset/CMakeFiles/paramount_poset.dir/poset_io.cpp.o.d"
  "/root/repo/src/poset/topo_sort.cpp" "src/poset/CMakeFiles/paramount_poset.dir/topo_sort.cpp.o" "gcc" "src/poset/CMakeFiles/paramount_poset.dir/topo_sort.cpp.o.d"
  "/root/repo/src/poset/vector_clock.cpp" "src/poset/CMakeFiles/paramount_poset.dir/vector_clock.cpp.o" "gcc" "src/poset/CMakeFiles/paramount_poset.dir/vector_clock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/paramount_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
