# Empty dependencies file for paramount_poset.
# This may be replaced when dependencies are built.
