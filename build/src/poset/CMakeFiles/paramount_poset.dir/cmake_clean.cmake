file(REMOVE_RECURSE
  "CMakeFiles/paramount_poset.dir/event.cpp.o"
  "CMakeFiles/paramount_poset.dir/event.cpp.o.d"
  "CMakeFiles/paramount_poset.dir/lattice.cpp.o"
  "CMakeFiles/paramount_poset.dir/lattice.cpp.o.d"
  "CMakeFiles/paramount_poset.dir/online_poset.cpp.o"
  "CMakeFiles/paramount_poset.dir/online_poset.cpp.o.d"
  "CMakeFiles/paramount_poset.dir/poset.cpp.o"
  "CMakeFiles/paramount_poset.dir/poset.cpp.o.d"
  "CMakeFiles/paramount_poset.dir/poset_builder.cpp.o"
  "CMakeFiles/paramount_poset.dir/poset_builder.cpp.o.d"
  "CMakeFiles/paramount_poset.dir/poset_io.cpp.o"
  "CMakeFiles/paramount_poset.dir/poset_io.cpp.o.d"
  "CMakeFiles/paramount_poset.dir/topo_sort.cpp.o"
  "CMakeFiles/paramount_poset.dir/topo_sort.cpp.o.d"
  "CMakeFiles/paramount_poset.dir/vector_clock.cpp.o"
  "CMakeFiles/paramount_poset.dir/vector_clock.cpp.o.d"
  "libparamount_poset.a"
  "libparamount_poset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paramount_poset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
