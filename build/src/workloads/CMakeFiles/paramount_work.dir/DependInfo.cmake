
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/harness.cpp" "src/workloads/CMakeFiles/paramount_work.dir/harness.cpp.o" "gcc" "src/workloads/CMakeFiles/paramount_work.dir/harness.cpp.o.d"
  "/root/repo/src/workloads/prog_arraylist.cpp" "src/workloads/CMakeFiles/paramount_work.dir/prog_arraylist.cpp.o" "gcc" "src/workloads/CMakeFiles/paramount_work.dir/prog_arraylist.cpp.o.d"
  "/root/repo/src/workloads/prog_banking.cpp" "src/workloads/CMakeFiles/paramount_work.dir/prog_banking.cpp.o" "gcc" "src/workloads/CMakeFiles/paramount_work.dir/prog_banking.cpp.o.d"
  "/root/repo/src/workloads/prog_elevator.cpp" "src/workloads/CMakeFiles/paramount_work.dir/prog_elevator.cpp.o" "gcc" "src/workloads/CMakeFiles/paramount_work.dir/prog_elevator.cpp.o.d"
  "/root/repo/src/workloads/prog_hedc.cpp" "src/workloads/CMakeFiles/paramount_work.dir/prog_hedc.cpp.o" "gcc" "src/workloads/CMakeFiles/paramount_work.dir/prog_hedc.cpp.o.d"
  "/root/repo/src/workloads/prog_moldyn.cpp" "src/workloads/CMakeFiles/paramount_work.dir/prog_moldyn.cpp.o" "gcc" "src/workloads/CMakeFiles/paramount_work.dir/prog_moldyn.cpp.o.d"
  "/root/repo/src/workloads/prog_montecarlo.cpp" "src/workloads/CMakeFiles/paramount_work.dir/prog_montecarlo.cpp.o" "gcc" "src/workloads/CMakeFiles/paramount_work.dir/prog_montecarlo.cpp.o.d"
  "/root/repo/src/workloads/prog_raytracer.cpp" "src/workloads/CMakeFiles/paramount_work.dir/prog_raytracer.cpp.o" "gcc" "src/workloads/CMakeFiles/paramount_work.dir/prog_raytracer.cpp.o.d"
  "/root/repo/src/workloads/prog_set.cpp" "src/workloads/CMakeFiles/paramount_work.dir/prog_set.cpp.o" "gcc" "src/workloads/CMakeFiles/paramount_work.dir/prog_set.cpp.o.d"
  "/root/repo/src/workloads/prog_sor.cpp" "src/workloads/CMakeFiles/paramount_work.dir/prog_sor.cpp.o" "gcc" "src/workloads/CMakeFiles/paramount_work.dir/prog_sor.cpp.o.d"
  "/root/repo/src/workloads/prog_tsp.cpp" "src/workloads/CMakeFiles/paramount_work.dir/prog_tsp.cpp.o" "gcc" "src/workloads/CMakeFiles/paramount_work.dir/prog_tsp.cpp.o.d"
  "/root/repo/src/workloads/random_poset.cpp" "src/workloads/CMakeFiles/paramount_work.dir/random_poset.cpp.o" "gcc" "src/workloads/CMakeFiles/paramount_work.dir/random_poset.cpp.o.d"
  "/root/repo/src/workloads/traced_programs.cpp" "src/workloads/CMakeFiles/paramount_work.dir/traced_programs.cpp.o" "gcc" "src/workloads/CMakeFiles/paramount_work.dir/traced_programs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/detect/CMakeFiles/paramount_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/paramount_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/paramount_core.dir/DependInfo.cmake"
  "/root/repo/build/src/enumeration/CMakeFiles/paramount_enum.dir/DependInfo.cmake"
  "/root/repo/build/src/poset/CMakeFiles/paramount_poset.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/paramount_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
