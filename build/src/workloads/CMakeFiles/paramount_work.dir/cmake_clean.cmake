file(REMOVE_RECURSE
  "CMakeFiles/paramount_work.dir/harness.cpp.o"
  "CMakeFiles/paramount_work.dir/harness.cpp.o.d"
  "CMakeFiles/paramount_work.dir/prog_arraylist.cpp.o"
  "CMakeFiles/paramount_work.dir/prog_arraylist.cpp.o.d"
  "CMakeFiles/paramount_work.dir/prog_banking.cpp.o"
  "CMakeFiles/paramount_work.dir/prog_banking.cpp.o.d"
  "CMakeFiles/paramount_work.dir/prog_elevator.cpp.o"
  "CMakeFiles/paramount_work.dir/prog_elevator.cpp.o.d"
  "CMakeFiles/paramount_work.dir/prog_hedc.cpp.o"
  "CMakeFiles/paramount_work.dir/prog_hedc.cpp.o.d"
  "CMakeFiles/paramount_work.dir/prog_moldyn.cpp.o"
  "CMakeFiles/paramount_work.dir/prog_moldyn.cpp.o.d"
  "CMakeFiles/paramount_work.dir/prog_montecarlo.cpp.o"
  "CMakeFiles/paramount_work.dir/prog_montecarlo.cpp.o.d"
  "CMakeFiles/paramount_work.dir/prog_raytracer.cpp.o"
  "CMakeFiles/paramount_work.dir/prog_raytracer.cpp.o.d"
  "CMakeFiles/paramount_work.dir/prog_set.cpp.o"
  "CMakeFiles/paramount_work.dir/prog_set.cpp.o.d"
  "CMakeFiles/paramount_work.dir/prog_sor.cpp.o"
  "CMakeFiles/paramount_work.dir/prog_sor.cpp.o.d"
  "CMakeFiles/paramount_work.dir/prog_tsp.cpp.o"
  "CMakeFiles/paramount_work.dir/prog_tsp.cpp.o.d"
  "CMakeFiles/paramount_work.dir/random_poset.cpp.o"
  "CMakeFiles/paramount_work.dir/random_poset.cpp.o.d"
  "CMakeFiles/paramount_work.dir/traced_programs.cpp.o"
  "CMakeFiles/paramount_work.dir/traced_programs.cpp.o.d"
  "libparamount_work.a"
  "libparamount_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paramount_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
