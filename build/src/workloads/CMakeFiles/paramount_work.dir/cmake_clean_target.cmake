file(REMOVE_RECURSE
  "libparamount_work.a"
)
