# Empty compiler generated dependencies file for paramount_work.
# This may be replaced when dependencies are built.
