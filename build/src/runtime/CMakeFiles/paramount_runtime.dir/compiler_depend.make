# Empty compiler generated dependencies file for paramount_runtime.
# This may be replaced when dependencies are built.
