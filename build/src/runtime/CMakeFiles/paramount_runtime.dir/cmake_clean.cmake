file(REMOVE_RECURSE
  "CMakeFiles/paramount_runtime.dir/tracer.cpp.o"
  "CMakeFiles/paramount_runtime.dir/tracer.cpp.o.d"
  "libparamount_runtime.a"
  "libparamount_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paramount_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
