file(REMOVE_RECURSE
  "libparamount_runtime.a"
)
