file(REMOVE_RECURSE
  "libparamount_util.a"
)
