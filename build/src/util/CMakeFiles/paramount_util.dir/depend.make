# Empty dependencies file for paramount_util.
# This may be replaced when dependencies are built.
