file(REMOVE_RECURSE
  "CMakeFiles/paramount_util.dir/cli.cpp.o"
  "CMakeFiles/paramount_util.dir/cli.cpp.o.d"
  "CMakeFiles/paramount_util.dir/stats.cpp.o"
  "CMakeFiles/paramount_util.dir/stats.cpp.o.d"
  "CMakeFiles/paramount_util.dir/table.cpp.o"
  "CMakeFiles/paramount_util.dir/table.cpp.o.d"
  "CMakeFiles/paramount_util.dir/thread_pool.cpp.o"
  "CMakeFiles/paramount_util.dir/thread_pool.cpp.o.d"
  "libparamount_util.a"
  "libparamount_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paramount_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
