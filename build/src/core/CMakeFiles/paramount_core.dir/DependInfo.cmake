
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/interval.cpp" "src/core/CMakeFiles/paramount_core.dir/interval.cpp.o" "gcc" "src/core/CMakeFiles/paramount_core.dir/interval.cpp.o.d"
  "/root/repo/src/core/online_paramount.cpp" "src/core/CMakeFiles/paramount_core.dir/online_paramount.cpp.o" "gcc" "src/core/CMakeFiles/paramount_core.dir/online_paramount.cpp.o.d"
  "/root/repo/src/core/paramount.cpp" "src/core/CMakeFiles/paramount_core.dir/paramount.cpp.o" "gcc" "src/core/CMakeFiles/paramount_core.dir/paramount.cpp.o.d"
  "/root/repo/src/core/schedule_sim.cpp" "src/core/CMakeFiles/paramount_core.dir/schedule_sim.cpp.o" "gcc" "src/core/CMakeFiles/paramount_core.dir/schedule_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/enumeration/CMakeFiles/paramount_enum.dir/DependInfo.cmake"
  "/root/repo/build/src/poset/CMakeFiles/paramount_poset.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/paramount_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
