file(REMOVE_RECURSE
  "libparamount_core.a"
)
