file(REMOVE_RECURSE
  "CMakeFiles/paramount_core.dir/interval.cpp.o"
  "CMakeFiles/paramount_core.dir/interval.cpp.o.d"
  "CMakeFiles/paramount_core.dir/online_paramount.cpp.o"
  "CMakeFiles/paramount_core.dir/online_paramount.cpp.o.d"
  "CMakeFiles/paramount_core.dir/paramount.cpp.o"
  "CMakeFiles/paramount_core.dir/paramount.cpp.o.d"
  "CMakeFiles/paramount_core.dir/schedule_sim.cpp.o"
  "CMakeFiles/paramount_core.dir/schedule_sim.cpp.o.d"
  "libparamount_core.a"
  "libparamount_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paramount_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
