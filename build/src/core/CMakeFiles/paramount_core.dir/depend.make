# Empty dependencies file for paramount_core.
# This may be replaced when dependencies are built.
