# Empty dependencies file for paramount_detect.
# This may be replaced when dependencies are built.
