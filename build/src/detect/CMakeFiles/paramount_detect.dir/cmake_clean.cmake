file(REMOVE_RECURSE
  "CMakeFiles/paramount_detect.dir/conjunctive.cpp.o"
  "CMakeFiles/paramount_detect.dir/conjunctive.cpp.o.d"
  "CMakeFiles/paramount_detect.dir/fasttrack.cpp.o"
  "CMakeFiles/paramount_detect.dir/fasttrack.cpp.o.d"
  "CMakeFiles/paramount_detect.dir/modalities.cpp.o"
  "CMakeFiles/paramount_detect.dir/modalities.cpp.o.d"
  "CMakeFiles/paramount_detect.dir/offline_bfs_detector.cpp.o"
  "CMakeFiles/paramount_detect.dir/offline_bfs_detector.cpp.o.d"
  "CMakeFiles/paramount_detect.dir/race_report.cpp.o"
  "CMakeFiles/paramount_detect.dir/race_report.cpp.o.d"
  "libparamount_detect.a"
  "libparamount_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paramount_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
