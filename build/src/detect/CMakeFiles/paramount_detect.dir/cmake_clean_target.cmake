file(REMOVE_RECURSE
  "libparamount_detect.a"
)
