# Empty dependencies file for poset_tests.
# This may be replaced when dependencies are built.
