file(REMOVE_RECURSE
  "CMakeFiles/poset_tests.dir/test_poset.cpp.o"
  "CMakeFiles/poset_tests.dir/test_poset.cpp.o.d"
  "CMakeFiles/poset_tests.dir/test_poset_io.cpp.o"
  "CMakeFiles/poset_tests.dir/test_poset_io.cpp.o.d"
  "CMakeFiles/poset_tests.dir/test_random_poset.cpp.o"
  "CMakeFiles/poset_tests.dir/test_random_poset.cpp.o.d"
  "CMakeFiles/poset_tests.dir/test_topo_lattice.cpp.o"
  "CMakeFiles/poset_tests.dir/test_topo_lattice.cpp.o.d"
  "CMakeFiles/poset_tests.dir/test_vector_clock.cpp.o"
  "CMakeFiles/poset_tests.dir/test_vector_clock.cpp.o.d"
  "poset_tests"
  "poset_tests.pdb"
  "poset_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poset_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
