
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_conjunctive.cpp" "tests/CMakeFiles/detection_tests.dir/test_conjunctive.cpp.o" "gcc" "tests/CMakeFiles/detection_tests.dir/test_conjunctive.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/detection_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/detection_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_modalities.cpp" "tests/CMakeFiles/detection_tests.dir/test_modalities.cpp.o" "gcc" "tests/CMakeFiles/detection_tests.dir/test_modalities.cpp.o.d"
  "/root/repo/tests/test_schedule_controller.cpp" "tests/CMakeFiles/detection_tests.dir/test_schedule_controller.cpp.o" "gcc" "tests/CMakeFiles/detection_tests.dir/test_schedule_controller.cpp.o.d"
  "/root/repo/tests/test_workload_detection.cpp" "tests/CMakeFiles/detection_tests.dir/test_workload_detection.cpp.o" "gcc" "tests/CMakeFiles/detection_tests.dir/test_workload_detection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/paramount_work.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/paramount_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/paramount_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/paramount_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/enumeration/CMakeFiles/paramount_enum.dir/DependInfo.cmake"
  "/root/repo/build/src/poset/CMakeFiles/paramount_poset.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/paramount_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
