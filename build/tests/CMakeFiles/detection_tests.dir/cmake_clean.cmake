file(REMOVE_RECURSE
  "CMakeFiles/detection_tests.dir/test_conjunctive.cpp.o"
  "CMakeFiles/detection_tests.dir/test_conjunctive.cpp.o.d"
  "CMakeFiles/detection_tests.dir/test_integration.cpp.o"
  "CMakeFiles/detection_tests.dir/test_integration.cpp.o.d"
  "CMakeFiles/detection_tests.dir/test_modalities.cpp.o"
  "CMakeFiles/detection_tests.dir/test_modalities.cpp.o.d"
  "CMakeFiles/detection_tests.dir/test_schedule_controller.cpp.o"
  "CMakeFiles/detection_tests.dir/test_schedule_controller.cpp.o.d"
  "CMakeFiles/detection_tests.dir/test_workload_detection.cpp.o"
  "CMakeFiles/detection_tests.dir/test_workload_detection.cpp.o.d"
  "detection_tests"
  "detection_tests.pdb"
  "detection_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detection_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
