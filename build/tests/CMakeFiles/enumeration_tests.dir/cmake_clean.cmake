file(REMOVE_RECURSE
  "CMakeFiles/enumeration_tests.dir/test_enumerators.cpp.o"
  "CMakeFiles/enumeration_tests.dir/test_enumerators.cpp.o.d"
  "CMakeFiles/enumeration_tests.dir/test_wide_poset.cpp.o"
  "CMakeFiles/enumeration_tests.dir/test_wide_poset.cpp.o.d"
  "enumeration_tests"
  "enumeration_tests.pdb"
  "enumeration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enumeration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
