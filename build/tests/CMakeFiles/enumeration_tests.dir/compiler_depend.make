# Empty compiler generated dependencies file for enumeration_tests.
# This may be replaced when dependencies are built.
