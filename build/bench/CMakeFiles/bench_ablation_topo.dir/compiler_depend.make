# Empty compiler generated dependencies file for bench_ablation_topo.
# This may be replaced when dependencies are built.
