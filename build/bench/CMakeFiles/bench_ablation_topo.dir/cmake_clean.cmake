file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_topo.dir/bench_ablation_topo.cpp.o"
  "CMakeFiles/bench_ablation_topo.dir/bench_ablation_topo.cpp.o.d"
  "bench_ablation_topo"
  "bench_ablation_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
