# Empty dependencies file for bench_ablation_subroutine.
# This may be replaced when dependencies are built.
