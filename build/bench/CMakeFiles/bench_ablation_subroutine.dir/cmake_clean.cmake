file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_subroutine.dir/bench_ablation_subroutine.cpp.o"
  "CMakeFiles/bench_ablation_subroutine.dir/bench_ablation_subroutine.cpp.o.d"
  "bench_ablation_subroutine"
  "bench_ablation_subroutine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_subroutine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
