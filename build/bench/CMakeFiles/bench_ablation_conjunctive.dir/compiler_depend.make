# Empty compiler generated dependencies file for bench_ablation_conjunctive.
# This may be replaced when dependencies are built.
