file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_conjunctive.dir/bench_ablation_conjunctive.cpp.o"
  "CMakeFiles/bench_ablation_conjunctive.dir/bench_ablation_conjunctive.cpp.o.d"
  "bench_ablation_conjunctive"
  "bench_ablation_conjunctive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_conjunctive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
