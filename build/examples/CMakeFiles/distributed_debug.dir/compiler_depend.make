# Empty compiler generated dependencies file for distributed_debug.
# This may be replaced when dependencies are built.
