file(REMOVE_RECURSE
  "CMakeFiles/distributed_debug.dir/distributed_debug.cpp.o"
  "CMakeFiles/distributed_debug.dir/distributed_debug.cpp.o.d"
  "distributed_debug"
  "distributed_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
