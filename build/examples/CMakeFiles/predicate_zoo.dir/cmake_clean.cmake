file(REMOVE_RECURSE
  "CMakeFiles/predicate_zoo.dir/predicate_zoo.cpp.o"
  "CMakeFiles/predicate_zoo.dir/predicate_zoo.cpp.o.d"
  "predicate_zoo"
  "predicate_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicate_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
