# Empty compiler generated dependencies file for predicate_zoo.
# This may be replaced when dependencies are built.
