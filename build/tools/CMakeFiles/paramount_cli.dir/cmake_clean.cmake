file(REMOVE_RECURSE
  "CMakeFiles/paramount_cli.dir/paramount_cli.cpp.o"
  "CMakeFiles/paramount_cli.dir/paramount_cli.cpp.o.d"
  "paramount"
  "paramount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paramount_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
