# Empty compiler generated dependencies file for paramount_cli.
# This may be replaced when dependencies are built.
